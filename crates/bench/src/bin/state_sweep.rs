//! Client-state storm sweep: lease registration/renewal storms, client
//! reboot churn, and server crashes with grace-period recovery, all over the
//! sharded client-state layer — the robustness grid for the state manager.
//!
//! Two oracles are asserted on every cell, leases armed or not:
//!
//! * **Grace leak** — a fresh (non-reclaim) lock admitted during the grace
//!   window that conflicts with a reclaimable pre-crash lock
//!   (`grace_conflicts`), or a write accepted under an expired lease
//!   (`expired_lease_writes`).  Both must be zero everywhere: the grace
//!   period exists precisely so neither can happen.
//! * **Recovery** — the PR 6 crash oracle (`lost_acked_bytes`) and the
//!   standing health invariants (zero `InProgress` dupcache evictions, zero
//!   events clamped into the past) must survive the state machinery.
//!
//! The headline cell is the 10 000-client lease storm: every client
//! registering, renewing and locking against the sharded table while the SFS
//! mix runs underneath.  The cell records the knee shift (achieved ops with
//! the state layer armed vs the stateless baseline at the same offered load)
//! and the state-table footprint in bytes per client.
//!
//! Results are merged into `BENCH_writepath.json` under the `"state_storms"`
//! key; the other bench binaries preserve it when they rewrite the file.
//!
//! ```text
//! cargo run --release -p wg-bench --bin state_sweep              # full grid
//! cargo run --release -p wg-bench --bin state_sweep -- --smoke
//! cargo run --release -p wg-bench --bin state_sweep -- --out other.json
//! ```

use wg_bench::report::{stamp_cell, upsert_object};
use wg_server::WritePolicy;
use wg_simcore::{Duration, FaultPlan};
use wg_workload::results::json;
use wg_workload::sfs::SfsSystem;
use wg_workload::SfsConfig;

/// The two state oracles plus the standing health invariants, asserted the
/// same way on every cell.
fn assert_state_oracles(label: &str, system: &SfsSystem) {
    let st = system.server().state_stats();
    assert_eq!(
        st.grace_conflicts, 0,
        "{label}: a fresh lock granted during grace conflicted with a \
         reclaimable pre-crash lock"
    );
    assert_eq!(
        st.expired_lease_writes, 0,
        "{label}: a write was accepted under an expired lease"
    );
    assert_eq!(
        system.server().stats().lost_acked_bytes,
        0,
        "{label}: acknowledged write data was lost across a crash"
    );
    assert_eq!(
        system.server().dupcache_evicted_in_progress(),
        0,
        "{label}: dupcache evicted an InProgress entry (§6.9 hazard)"
    );
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );
}

/// The per-cell state readout: grant/renewal/reclaim counters, the oracle
/// values (always zero, recorded anyway so the report shows they were
/// measured), and the table footprint.
fn state_fields(system: &SfsSystem) -> Vec<(&'static str, String)> {
    let st = system.server().state_stats();
    let clients = system.config().clients.max(1) as u64;
    let (issued, completed) = system.lease_counts();
    let (fresh, reclaimed) = system.lock_grants();
    vec![
        ("lease_ops_issued", issued.to_string()),
        ("lease_ops_completed", completed.to_string()),
        ("leases_granted", st.leases_granted.to_string()),
        ("renewals", st.renewals.to_string()),
        ("leases_expired", st.leases_expired.to_string()),
        ("state_orphaned", st.state_orphaned.to_string()),
        ("locks_granted", fresh.to_string()),
        ("locks_reclaimed", reclaimed.to_string()),
        ("client_reboots", st.client_reboots.to_string()),
        ("reboot_revoked_locks", st.reboot_revoked_locks.to_string()),
        ("grace_rejections", st.grace_rejections.to_string()),
        ("seqid_rejections", st.seqid_rejections.to_string()),
        ("grace_conflicts", st.grace_conflicts.to_string()),
        ("expired_lease_writes", st.expired_lease_writes.to_string()),
        (
            "active_lease_clients",
            system.server().active_lease_clients().to_string(),
        ),
        ("held_locks", system.server().held_locks().to_string()),
        (
            "state_table_bytes",
            system.server().state_table_bytes().to_string(),
        ),
        (
            "state_bytes_per_client",
            (system.server().state_table_bytes() / clients).to_string(),
        ),
        (
            "evicted_in_progress",
            system.server().dupcache_evicted_in_progress().to_string(),
        ),
        (
            "lost_acked_bytes",
            system.server().stats().lost_acked_bytes.to_string(),
        ),
    ]
}

/// One storm-grid cell: `clients` streams renewing every `renew_ms` over the
/// 4-way-sharded state table, optionally rebooting (churn) and optionally
/// with the server crashing on a schedule while they hold locks.
#[allow(clippy::too_many_arguments)]
fn run_state_cell(
    label: &str,
    clients: usize,
    load: f64,
    secs: u64,
    renew_ms: u64,
    churn_ms: u64,
    crash_interval_secs: f64,
) -> String {
    let crashed = crash_interval_secs > 0.0;
    let mut config = SfsConfig::figure2(load, WritePolicy::Gathering)
        .with_clients(clients)
        .with_shards(4)
        .with_leases(true);
    config.duration = Duration::from_secs(secs);
    config = if crashed {
        // Crash cells use the timing the grace-recovery scenario needs: a
        // lease long enough to survive the 1 s reboot and a grace window
        // wide enough for every live client to reclaim.
        config
            .with_lease_timing(
                Duration::from_millis(renew_ms),
                Duration::from_secs(2),
                Duration::from_millis(1500),
            )
            .with_fault_plan(FaultPlan::crash_every(
                Duration::from_secs_f64(crash_interval_secs),
                Duration::from_secs(secs),
            ))
            .with_retry(Duration::from_millis(300), 6)
    } else {
        config.with_lease_timing(
            Duration::from_millis(renew_ms),
            Duration::from_millis(renew_ms * 3),
            Duration::from_millis(renew_ms),
        )
    };
    if churn_ms > 0 {
        config = config.with_churn(Duration::from_millis(churn_ms));
    }
    let mut system = SfsSystem::new(config);
    let point = system.run();
    assert_state_oracles(label, &system);
    let st = system.server().state_stats();
    assert!(
        st.leases_granted >= clients as u64,
        "{label}: not every stream registered a lease"
    );
    if crashed {
        assert!(
            system.observed_server_reboots() > 0,
            "{label}: no stream ever observed the scheduled crash"
        );
        // A churning client may be mid-reboot (lock dropped) when the server
        // dies, so only the pure-crash cell is guaranteed a reclaim.
        if churn_ms == 0 {
            assert!(
                st.locks_reclaimed > 0,
                "{label}: the crash cell never exercised a grace-period reclaim"
            );
        }
    }
    if churn_ms > 0 {
        assert!(
            st.client_reboots > 0,
            "{label}: churn never produced a verifier-visible client reboot"
        );
    }

    println!(
        "{label:<28} achieved {:>7.1} ops/s  leases {:>6}  renewals {:>6}  \
         locks {:>5}+{:<4} reclaimed  reboots c{:<3}/s{:<2}  table {:>7} B",
        point.achieved_ops_per_sec,
        st.leases_granted,
        st.renewals,
        st.locks_granted,
        st.locks_reclaimed,
        st.client_reboots,
        system.server().stats().crashes,
        system.server().state_table_bytes(),
    );
    let mut fields = vec![
        ("clients", clients.to_string()),
        ("renew_ms", renew_ms.to_string()),
        ("churn_ms", churn_ms.to_string()),
        ("crash_interval_secs", json::number(crash_interval_secs)),
        (
            "offered_ops_per_sec",
            json::number(point.offered_ops_per_sec),
        ),
        (
            "achieved_ops_per_sec",
            json::number(point.achieved_ops_per_sec),
        ),
        ("avg_latency_ms", json::number(point.avg_latency_ms)),
        ("crashes", system.server().stats().crashes.to_string()),
        ("churn_reboots", system.churn_reboots().to_string()),
        ("gave_up", system.gave_up().to_string()),
        ("retransmissions", system.retransmissions().to_string()),
    ];
    fields.extend(state_fields(&system));
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// The abandoned-client cell: datagram loss with a short retry budget makes
/// some streams give up mid-run.  A gave-up stream goes lease-dead — it
/// stops renewing — so the server's expiry sweep must reclaim its lease and
/// orphan its lock rather than hold the state forever.
fn run_abandoned_cell(label: &str, clients: usize, load: f64, secs: u64) -> String {
    let mut config = SfsConfig::figure2(load, WritePolicy::Gathering)
        .with_clients(clients)
        .with_shards(4)
        .with_leases(true)
        .with_lease_timing(
            Duration::from_millis(300),
            Duration::from_millis(900),
            Duration::from_millis(300),
        )
        .with_loss(0.08)
        .with_retry(Duration::from_millis(150), 2);
    config.duration = Duration::from_secs(secs);
    let mut system = SfsSystem::new(config);
    let point = system.run();
    assert_state_oracles(label, &system);
    let st = system.server().state_stats();
    let dead = system.lease_dead_streams();
    if dead > 0 {
        // The point of the cell: abandoned state must drain.  Every
        // lease-dead stream's lease outlives its last renewal by at most
        // the lease duration, so by end-of-run expiry it is reclaimed.
        assert!(
            st.leases_expired > 0,
            "{label}: {dead} streams went lease-dead but no lease expired"
        );
    }
    // Expired state is actually gone: whoever still holds a lock also still
    // holds a live lease.
    assert!(
        system.server().held_locks() <= system.server().active_lease_clients(),
        "{label}: a lock survived its owner's lease expiry"
    );

    println!(
        "{label:<28} achieved {:>7.1} ops/s  gave_up {:>4}  lease_dead {:>4}  \
         expired {:>4}  orphaned {:>4}",
        point.achieved_ops_per_sec,
        system.gave_up(),
        dead,
        st.leases_expired,
        st.state_orphaned,
    );
    let mut fields = vec![
        ("clients", clients.to_string()),
        ("loss_rate", json::number(0.08)),
        (
            "achieved_ops_per_sec",
            json::number(point.achieved_ops_per_sec),
        ),
        ("gave_up", system.gave_up().to_string()),
        ("lease_dead_streams", dead.to_string()),
    ];
    fields.extend(state_fields(&system));
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// The headline 10k-client lease storm: the same shared-LAN SFS mix run
/// twice at the same offered load — stateless, then with every one of the
/// `clients` streams registering, renewing and locking against the 8-way
/// sharded state table.  The knee shift (achieved-ops delta) prices the
/// state layer; the table footprint is reported per client.
fn run_storm_cell(label: &str, clients: usize, load: f64, secs: u64) -> String {
    let base = {
        // The scaled PR 3-4 topology (per-client LANs, sharded multi-core
        // server) is the only deployment that can face 10k clients at all;
        // the state table rides its 8-way sharding.
        let mut config = SfsConfig::scaled(load, WritePolicy::Gathering, clients)
            .with_shards(8)
            // The storm is about state traffic, not the file working set: a
            // small scratch rotation limit plus a widened inode spread keep
            // the 10k x 32-slot scratch namespace (~320k inodes) inside the
            // inode region (96 groups x 3584 inodes, under the 109-group
            // region cap).
            .with_scratch_file_limit(256 * 1024)
            .with_inode_groups(96);
        config.duration = Duration::from_secs(secs);
        config.file_count = 30;
        config
    };

    let mut off = SfsSystem::new(base.clone());
    let off_point = off.run();
    assert_state_oracles(&format!("{label}_off"), &off);
    assert_eq!(
        off.server().state_stats(),
        &wg_server::StateStats::default(),
        "{label}: the stateless baseline touched the state table"
    );

    // All 10k registrations land in a microseconds-wide wave — deliberately
    // far past the server's per-second capacity, so the run measures
    // *survival under overload*: the backlog must drain in arrival order
    // with zero oracle violations and zero InProgress dupcache evictions,
    // and whatever fraction of the wave the server absorbs in-window must
    // be internally consistent.  The lease outlives the run so absorption
    // is pure throughput, not a race against the expiry clock.
    let mut on = SfsSystem::new(base.with_leases(true).with_lease_timing(
        Duration::from_millis(1000),
        Duration::from_secs(10 * secs),
        Duration::from_millis(500),
    ));
    let on_point = on.run();
    assert_state_oracles(&format!("{label}_on"), &on);
    let st = on.server().state_stats();
    let registered = on.server().active_lease_clients();
    assert!(
        registered > 0 && registered <= clients,
        "{label}: registration count {registered} is not sane for {clients} clients"
    );
    assert!(
        st.locks_granted > 0,
        "{label}: no registered stream ever acquired its lock"
    );
    assert!(
        on.server().held_locks() <= registered,
        "{label}: a lock is held by a client with no live lease"
    );
    assert_eq!(
        st.leases_expired, 0,
        "{label}: a lease expired even though the lease outlives the run"
    );

    let knee_shift = off_point.achieved_ops_per_sec - on_point.achieved_ops_per_sec;
    let bytes_per_client = on.server().state_table_bytes() / registered.max(1) as u64;
    println!(
        "{label:<28} off {:>7.1} ops/s  on {:>7.1} ops/s  knee shift {:>6.1}  \
         registered {:>5}/{clients}  table {:>8} B ({} B/client)",
        off_point.achieved_ops_per_sec,
        on_point.achieved_ops_per_sec,
        knee_shift,
        registered,
        on.server().state_table_bytes(),
        bytes_per_client,
    );
    let mut fields = vec![
        ("clients", clients.to_string()),
        ("registered_clients", registered.to_string()),
        (
            "registration_ratio",
            json::number(registered as f64 / clients.max(1) as f64),
        ),
        (
            "state_bytes_per_registered_client",
            bytes_per_client.to_string(),
        ),
        ("offered_ops_per_sec", json::number(load)),
        (
            "achieved_ops_per_sec_stateless",
            json::number(off_point.achieved_ops_per_sec),
        ),
        (
            "achieved_ops_per_sec_leases",
            json::number(on_point.achieved_ops_per_sec),
        ),
        ("knee_shift_ops_per_sec", json::number(knee_shift)),
        (
            "avg_latency_ms_stateless",
            json::number(off_point.avg_latency_ms),
        ),
        (
            "avg_latency_ms_leases",
            json::number(on_point.avg_latency_ms),
        ),
    ];
    fields.extend(state_fields(&on));
    let mut sched = on.sched_stats();
    sched.absorb(&off.sched_stats());
    stamp_cell(&mut fields, on.clamped_past() + off.clamped_past(), &sched);
    json::object(&fields)
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    let mut smoke = false;
    let mut secs: Option<u64> = None;
    let mut load: Option<f64> = None;
    let mut storm_clients: Option<usize> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            "--secs" => {
                secs = Some(
                    iter.next()
                        .expect("--secs needs a count")
                        .parse()
                        .expect("--secs needs a number"),
                );
            }
            "--load" => {
                load = Some(
                    iter.next()
                        .expect("--load needs a value")
                        .parse()
                        .expect("--load needs a number"),
                );
            }
            "--storm-clients" => {
                storm_clients = Some(
                    iter.next()
                        .expect("--storm-clients needs a count")
                        .parse()
                        .expect("--storm-clients needs a number"),
                );
            }
            other => panic!(
                "unknown argument {other}; use --smoke, --out PATH, --secs N, \
                 --load N, --storm-clients N"
            ),
        }
    }
    let secs = secs.unwrap_or(if smoke { 4 } else { 10 });
    let load = load.unwrap_or(if smoke { 150.0 } else { 400.0 });
    let grid_clients = if smoke { 16 } else { 64 };
    let storm_clients = storm_clients.unwrap_or(10_000);
    // The storm needs at least four renewal intervals: register, lock,
    // renew, and a margin for the replies to land.
    let storm_secs = if smoke { 4 } else { 5 };
    let storm_load = if smoke { 100.0 } else { 200.0 };
    let (renews, churns, crashes): (&[u64], &[u64], &[f64]) = if smoke {
        (&[400], &[0, 900], &[0.0, 1.5])
    } else {
        (&[200, 500], &[0, 1100], &[0.0, 2.0])
    };

    // The storm grid: renewal rate x churn rate x crash schedule over the
    // sharded state table.
    let mut cells: Vec<(String, String)> = Vec::new();
    for &renew in renews {
        for &churn in churns {
            for &crash in crashes {
                let name = format!("renew{renew}ms_churn{churn}ms_crash{crash}s");
                let cell = run_state_cell(&name, grid_clients, load, secs, renew, churn, crash);
                cells.push((name, cell));
            }
        }
    }
    // Abandoned clients: give-ups must drain their server-side state.
    let abandoned = run_abandoned_cell("abandoned_streams", grid_clients, load, secs);
    // The headline storm: 10k clients against the sharded table, priced
    // against the stateless baseline.
    let storm = run_storm_cell("lease_storm_10k", storm_clients, storm_load, storm_secs);

    let grid_fields: Vec<(&str, String)> = cells
        .iter()
        .map(|(name, cell)| (name.as_str(), cell.clone()))
        .collect();
    let state_storms = json::object(&[
        ("smoke", smoke.to_string()),
        ("secs", secs.to_string()),
        ("grid_clients", grid_clients.to_string()),
        ("offered_ops_per_sec", json::number(load)),
        ("grid", json::object(&grid_fields)),
        ("abandoned_streams", abandoned),
        ("lease_storm_10k", storm),
    ]);
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let report = upsert_object(&previous, "state_storms", &state_storms);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
