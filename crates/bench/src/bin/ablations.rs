//! Ablation studies of the design choices the paper discusses:
//!
//! * §6.6 — the procrastination interval (a sweep around the 8 ms / 5 ms the
//!   paper chose empirically), and the [SIVA93] "first write as the latency
//!   device" alternative.
//! * §6.7 — FIFO vs LIFO reply ordering.
//! * §6.5 — the mbuf hunter (socket-buffer scan) on and off.
//! * "dangerous mode" — what asynchronous writes would buy, and what they cost
//!   in un-committed data.
//!
//! ```text
//! cargo run --release -p wg-bench --bin ablations
//! cargo run --release -p wg-bench --bin ablations -- --file-mb 2
//! ```

use wg_server::{ReplyOrder, ServerConfig, WritePolicy};
use wg_simcore::Duration;
use wg_workload::{ExperimentConfig, FileCopyResult, FileCopySystem, NetworkKind};

fn run_customized(
    config: ExperimentConfig,
    customize: impl FnOnce(&mut ServerConfig),
) -> FileCopyResult {
    FileCopySystem::new_customized(config, customize).run()
}

fn main() {
    let mut file_mb: u64 = 4;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--file-mb" => file_mb = iter.next().and_then(|v| v.parse().ok()).unwrap_or(4),
            other => panic!("unknown argument {other}; use --file-mb N"),
        }
    }
    let file = file_mb * 1024 * 1024;
    let biods = 7;

    println!("== Write policy comparison (FDDI, {biods} biods, {file_mb} MB copy, single RZ26) ==");
    println!(
        "{:<26} {:>14} {:>12} {:>14}",
        "policy", "client KB/s", "cpu %", "disk trans/s"
    );
    for (name, policy) in [
        ("standard", WritePolicy::Standard),
        ("gathering (paper)", WritePolicy::Gathering),
        ("first-write latency", WritePolicy::FirstWriteLatency),
        ("dangerous async", WritePolicy::DangerousAsync),
    ] {
        let r = run_customized(
            ExperimentConfig::new(NetworkKind::Fddi, biods, policy).with_file_size(file),
            |_| {},
        );
        println!(
            "{name:<26} {:>14.0} {:>12.1} {:>14.1}",
            r.client_write_kb_per_sec, r.server_cpu_percent, r.disk_trans_per_sec
        );
    }

    println!("\n== Procrastination interval sweep (FDDI, {biods} biods, gathering): §6.6 ==");
    println!(
        "{:<26} {:>14} {:>12} {:>14} {:>16}",
        "interval", "client KB/s", "cpu %", "disk trans/s", "mean batch size"
    );
    for ms in [0u64, 1, 2, 5, 8, 12, 20] {
        let r = run_customized(
            ExperimentConfig::new(NetworkKind::Fddi, biods, WritePolicy::Gathering)
                .with_file_size(file),
            |cfg| cfg.procrastination = Duration::from_millis(ms),
        );
        println!(
            "{:<26} {:>14.0} {:>12.1} {:>14.1} {:>16.1}",
            format!("{ms} ms"),
            r.client_write_kb_per_sec,
            r.server_cpu_percent,
            r.disk_trans_per_sec,
            r.mean_batch_size
        );
    }

    println!("\n== Reply ordering (FDDI, {biods} biods, gathering): §6.7 ==");
    for order in [ReplyOrder::Fifo, ReplyOrder::Lifo] {
        let r = run_customized(
            ExperimentConfig::new(NetworkKind::Fddi, biods, WritePolicy::Gathering)
                .with_file_size(file),
            |cfg| cfg.reply_order = order,
        );
        println!(
            "{:<26} {:>14.0} KB/s  (elapsed {:.2} s)",
            format!("{order:?}"),
            r.client_write_kb_per_sec,
            r.elapsed_secs
        );
    }

    println!("\n== Mbuf hunter (Ethernet + Presto, {biods} biods, gathering): §6.5 ==");
    for hunter in [true, false] {
        let r = run_customized(
            ExperimentConfig::new(NetworkKind::Ethernet, biods, WritePolicy::Gathering)
                .with_presto(true)
                .with_file_size(file),
            |cfg| cfg.mbuf_hunter = hunter,
        );
        println!(
            "{:<26} {:>14.0} KB/s at {:>5.1}% CPU, mean batch {:.1}",
            if hunter {
                "mbuf hunter on"
            } else {
                "mbuf hunter off"
            },
            r.client_write_kb_per_sec,
            r.server_cpu_percent,
            r.mean_batch_size
        );
    }

    println!("\n== Number of nfsds (FDDI, 15 biods, gathering): §6.1 scaling claim ==");
    for nfsds in [1usize, 2, 4, 8, 16] {
        let mut cfg = ExperimentConfig::new(NetworkKind::Fddi, 15, WritePolicy::Gathering)
            .with_file_size(file);
        cfg.nfsds = nfsds;
        let r = run_customized(cfg, |_| {});
        println!(
            "{:<26} {:>14.0} KB/s, mean batch {:.1}",
            format!("{nfsds} nfsds"),
            r.client_write_kb_per_sec,
            r.mean_batch_size
        );
    }
}
