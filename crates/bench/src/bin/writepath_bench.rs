//! Wall-clock benchmark of the simulator's write datapath.
//!
//! Times a canonical cell set — the Table 1 cell (Ethernet, 15 biods, 10 MB,
//! both policies), the Table 3 cell (FDDI, 15 biods, 10 MB, both policies)
//! and one SFS point — and writes `BENCH_writepath.json` so every PR has a
//! performance trajectory to compare against.
//!
//! ```text
//! cargo run --release -p wg-bench --bin writepath_bench -- --record-baseline
//! cargo run --release -p wg-bench --bin writepath_bench
//! cargo run --release -p wg-bench --bin writepath_bench -- --out other.json
//! ```
//!
//! `--record-baseline` writes the measurements under the `"baseline"` key.  A
//! normal run preserves any existing `"baseline"` object verbatim, writes the
//! fresh measurements under `"current"`, and reports per-cell speedups.

use std::time::Instant;

use wg_bench::report::{carry_unknown_keys, extract_object, stamp_cell};
use wg_server::WritePolicy;
use wg_simcore::CalStats;
use wg_workload::results::json;
use wg_workload::sfs::SfsSystem;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind, SfsConfig};

/// One timed cell: wall-clock plus simulation event statistics.
struct CellMeasurement {
    name: &'static str,
    wall_ms: f64,
    events_processed: u64,
    scheduled_total: u64,
    events_per_sec: f64,
    /// A stable scalar from the simulated result, so a run that got faster by
    /// simulating something different is caught immediately.
    sim_client_kb_per_sec: f64,
    /// Past-time clamps observed by the cell's queue(s); recorded via the
    /// shared provenance stamp and always expected to be zero.
    clamped_past: u64,
    /// The calendar queue's health counters for the cell's run(s).
    sched: CalStats,
}

impl CellMeasurement {
    fn to_json(&self) -> (&'static str, String) {
        let mut fields = vec![
            ("wall_ms", json::number(self.wall_ms)),
            ("events_processed", self.events_processed.to_string()),
            ("scheduled_total", self.scheduled_total.to_string()),
            ("events_per_sec", json::number(self.events_per_sec)),
            (
                "sim_client_kb_per_sec",
                json::number(self.sim_client_kb_per_sec),
            ),
        ];
        stamp_cell(&mut fields, self.clamped_past, &self.sched);
        (self.name, json::object(&fields))
    }
}

/// Time one file-copy table cell: both policies at the given network and biod
/// count, as `run_table` would execute them for one column.
fn time_copy_cell(
    name: &'static str,
    network: NetworkKind,
    biods: usize,
    file_size: u64,
) -> CellMeasurement {
    let start = Instant::now();
    let mut events = 0u64;
    let mut scheduled = 0u64;
    let mut kb_per_sec = 0.0;
    let mut clamped = 0u64;
    let mut sched = CalStats::default();
    for policy in [WritePolicy::Standard, WritePolicy::Gathering] {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(network, biods, policy).with_file_size(file_size),
        );
        let result = system.run();
        events += system.events_processed();
        scheduled += system.scheduled_total();
        kb_per_sec += result.client_write_kb_per_sec;
        clamped += system.clamped_past();
        sched.absorb(&system.sched_stats());
    }
    let wall = start.elapsed();
    CellMeasurement {
        name,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_processed: events,
        scheduled_total: scheduled,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        sim_client_kb_per_sec: kb_per_sec,
        clamped_past: clamped,
        sched,
    }
}

/// Time one SFS measurement point (FDDI, gathering, fixed offered load).
fn time_sfs_point(name: &'static str, secs: u64) -> CellMeasurement {
    let start = Instant::now();
    let mut config = SfsConfig::figure2(800.0, WritePolicy::Gathering);
    config.duration = wg_simcore::Duration::from_secs(secs);
    let mut system = SfsSystem::new(config);
    let point = system.run();
    let wall = start.elapsed();
    CellMeasurement {
        name,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_processed: system.events_processed(),
        scheduled_total: system.scheduled_total(),
        events_per_sec: system.events_processed() as f64 / wall.as_secs_f64().max(1e-9),
        sim_client_kb_per_sec: point.achieved_ops_per_sec,
        clamped_past: system.clamped_past(),
        sched: system.sched_stats(),
    }
}

fn measure(file_mb: u64, sfs_secs: u64) -> Vec<CellMeasurement> {
    let file_size = file_mb * 1024 * 1024;
    vec![
        time_copy_cell("table1_15biods", NetworkKind::Ethernet, 15, file_size),
        time_copy_cell("table3_15biods", NetworkKind::Fddi, 15, file_size),
        time_sfs_point("sfs_point_800ops", sfs_secs),
    ]
}

fn cells_json(cells: &[CellMeasurement]) -> String {
    let fields: Vec<(&str, String)> = cells.iter().map(|c| c.to_json()).collect();
    json::object(&fields)
}

/// Pull `"wall_ms":<number>` for a named cell out of a baseline object.
fn baseline_wall_ms(baseline: &str, cell: &str) -> Option<f64> {
    let at = baseline.find(&format!("\"{cell}\":"))?;
    let rest = &baseline[at..];
    let at = rest.find("\"wall_ms\":")? + "\"wall_ms\":".len();
    let tail = &rest[at..];
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    let mut record_baseline = false;
    let mut file_mb = 10u64;
    let mut sfs_secs = 10u64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--record-baseline" => record_baseline = true,
            "--file-mb" => {
                file_mb = iter.next().and_then(|v| v.parse().ok()).expect("--file-mb needs a number")
            }
            "--sfs-secs" => {
                sfs_secs = iter.next().and_then(|v| v.parse().ok()).expect("--sfs-secs needs a number")
            }
            other => panic!("unknown argument {other}; use --out PATH, --record-baseline, --file-mb N, --sfs-secs N"),
        }
    }

    let cells = measure(file_mb, sfs_secs);
    for c in &cells {
        println!(
            "{:<20} {:>10.1} ms   {:>9} events   {:>12.0} events/s   (sim {:.0} KB/s or ops/s)",
            c.name, c.wall_ms, c.events_processed, c.events_per_sec, c.sim_client_kb_per_sec
        );
    }

    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    // Other binaries (`scale_sweep`, `sfs_sweep`, `fault_sweep`, and any
    // future ones) merge their sections into the same file; carry every
    // top-level key this binary does not own across the rewrite, by walking
    // the report rather than naming them.
    const OWNED: [&str; 6] = [
        "bench", "file_mb", "sfs_secs", "baseline", "current", "speedup",
    ];
    let carried = carry_unknown_keys(&previous, &OWNED);
    let report = if record_baseline {
        let mut fields = vec![
            ("bench", "\"writepath\"".to_string()),
            ("file_mb", file_mb.to_string()),
            ("sfs_secs", sfs_secs.to_string()),
            ("baseline", cells_json(&cells)),
        ];
        for (key, value) in &carried {
            fields.push((key.as_str(), value.clone()));
        }
        json::object(&fields)
    } else {
        let baseline = extract_object(&previous, "baseline")
            .expect("no baseline in the report; run with --record-baseline first");
        let speedups: Vec<(&str, String)> = cells
            .iter()
            .filter_map(|c| {
                let base = baseline_wall_ms(&baseline, c.name)?;
                Some((c.name, json::number(base / c.wall_ms.max(1e-9))))
            })
            .collect();
        for (name, speedup) in &speedups {
            println!("{name:<20} speedup vs baseline: {speedup}x");
        }
        // A full-size run must never be slower than the recorded baseline: a
        // scheduler regression should fail the bench loudly instead of
        // silently re-recording a slower "current".  Smoke runs (shrunken
        // --file-mb / --sfs-secs) are exempt — their wall times are too short
        // to compare against the full-size baseline at all.
        if file_mb >= 10 && sfs_secs >= 10 {
            for c in &cells {
                if let Some(base) = baseline_wall_ms(&baseline, c.name) {
                    let speedup = base / c.wall_ms.max(1e-9);
                    assert!(
                        speedup >= 1.0,
                        "{}: wall {:.1} ms is slower than the recorded baseline \
                         {:.1} ms (speedup {:.2}x < 1.0)",
                        c.name,
                        c.wall_ms,
                        base,
                        speedup
                    );
                }
            }
        }
        let mut fields = vec![
            ("bench", "\"writepath\"".to_string()),
            ("file_mb", file_mb.to_string()),
            ("sfs_secs", sfs_secs.to_string()),
            ("baseline", baseline),
            ("current", cells_json(&cells)),
            ("speedup", json::object(&speedups)),
        ];
        for (key, value) in &carried {
            fields.push((key.as_str(), value.clone()));
        }
        json::object(&fields)
    };
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("wrote {out_path}");
}
