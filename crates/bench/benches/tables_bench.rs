//! Criterion benchmarks that exercise one cell of every table and one point of
//! each figure at reduced scale, so `cargo bench` tracks the cost of the
//! simulation paths that regenerate the paper's results.
//!
//! The full-size artefacts are produced by the `tables`, `figure1` and
//! `figure2_3` binaries; these benches use a smaller file / shorter interval
//! so a bench run stays in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wg_bench::{run_figure, run_table, TABLES};
use wg_server::WritePolicy;
use wg_workload::{system::run_cell, ExperimentConfig};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    for spec in &TABLES {
        group.bench_with_input(
            BenchmarkId::new("table", spec.number),
            spec,
            |b, spec| {
                // One representative column (7 biods) per policy rather than
                // the whole sweep, at 1 MB.
                b.iter(|| {
                    let reduced = wg_bench::TableSpec {
                        biods: &[7],
                        ..*spec
                    };
                    run_table(&reduced, 1024 * 1024)
                });
            },
        );
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_cell");
    group.sample_size(10);
    for (name, policy) in [
        ("standard", WritePolicy::Standard),
        ("gathering", WritePolicy::Gathering),
        ("first_write_latency", WritePolicy::FirstWriteLatency),
        ("dangerous", WritePolicy::DangerousAsync),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_cell(
                    ExperimentConfig::new(wg_workload::NetworkKind::Fddi, 7, policy)
                        .with_file_size(1024 * 1024),
                )
            });
        });
    }
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for figure in [2u8, 3u8] {
        group.bench_with_input(BenchmarkId::new("figure", figure), &figure, |b, &figure| {
            b.iter(|| {
                // One short measurement point per policy.
                let mut base = if figure == 2 {
                    wg_workload::SfsConfig::figure2(300.0, WritePolicy::Gathering)
                } else {
                    wg_workload::SfsConfig::figure3(300.0, WritePolicy::Gathering)
                };
                base.duration = wg_simcore::Duration::from_secs(2);
                base.file_count = 30;
                wg_workload::sfs::SfsSystem::new(base).run()
            });
        });
    }
    // And a tiny end-to-end sweep to keep the sweep code exercised.
    group.bench_function("mini_sweep", |b| {
        b.iter(|| run_figure(2, WritePolicy::Standard, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_policies, bench_figures);
criterion_main!(benches);
