//! Benchmarks that exercise one cell of every table and one point of each
//! figure at reduced scale, so `cargo bench` tracks the cost of the
//! simulation paths that regenerate the paper's results.
//!
//! The full-size artefacts are produced by the `tables`, `figure1` and
//! `figure2_3` binaries; these benches use a smaller file / shorter interval
//! so a bench run stays in seconds.  Criterion is unavailable offline, so the
//! timing loop is a plain `std::time::Instant` harness.

use std::time::Instant;

use wg_bench::{run_figure, run_table, TABLES};
use wg_server::WritePolicy;
use wg_workload::{system::run_cell, ExperimentConfig};

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<44} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn bench_tables() {
    for spec in &TABLES {
        bench(&format!("tables/table_{}", spec.number), 5, || {
            // One representative column (7 biods) per policy rather than the
            // whole sweep, at 1 MB.
            let reduced = wg_bench::TableSpec {
                biods: &[7],
                ..*spec
            };
            run_table(&reduced, 1024 * 1024)
        });
    }
}

fn bench_policies() {
    for (name, policy) in [
        ("policy_cell/standard", WritePolicy::Standard),
        ("policy_cell/gathering", WritePolicy::Gathering),
        (
            "policy_cell/first_write_latency",
            WritePolicy::FirstWriteLatency,
        ),
        ("policy_cell/dangerous", WritePolicy::DangerousAsync),
    ] {
        bench(name, 10, || {
            run_cell(
                ExperimentConfig::new(wg_workload::NetworkKind::Fddi, 7, policy)
                    .with_file_size(1024 * 1024),
            )
        });
    }
}

fn bench_figures() {
    for figure in [2u8, 3u8] {
        bench(&format!("figures/figure_{figure}"), 3, || {
            // One short measurement point per policy.
            let mut base = if figure == 2 {
                wg_workload::SfsConfig::figure2(300.0, WritePolicy::Gathering)
            } else {
                wg_workload::SfsConfig::figure3(300.0, WritePolicy::Gathering)
            };
            base.duration = wg_simcore::Duration::from_secs(2);
            base.file_count = 30;
            wg_workload::sfs::SfsSystem::new(base).run()
        });
    }
    // And a tiny end-to-end sweep to keep the sweep code exercised.
    bench("figures/mini_sweep", 3, || {
        run_figure(2, WritePolicy::Standard, 1)
    });
}

fn main() {
    bench_tables();
    bench_policies();
    bench_figures();
}
