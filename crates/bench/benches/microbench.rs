//! Micro-benchmarks of the individual substrates: XDR encoding, the UFS write
//! and clustering paths, the disk and NVRAM service-time models, and the
//! server's per-request processing.  These are the hot paths of the
//! simulation; tracking them keeps the table-regeneration harness fast enough
//! to iterate on.
//!
//! Criterion is unavailable offline, so this is a plain `harness = false`
//! bench: each case runs a fixed number of iterations around a
//! `std::time::Instant` and prints the mean per-iteration time.

use std::time::Instant;

use wg_disk::{BlockDevice, Disk, DiskRequest, StripeSet};
use wg_nfsproto::{FileHandle, NfsCall, NfsCallBody, WriteArgs, Xid};
use wg_nvram::Presto;
use wg_server::{NfsServer, ServerConfig, ServerInput, WritePolicy};
use wg_simcore::SimTime;
use wg_ufs::{FsyncFlags, Ufs, WriteFlags};

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // One warm-up iteration, then the measured batch.
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<44} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn bench_xdr() {
    let call = NfsCall::new(
        Xid(1),
        NfsCallBody::Write(WriteArgs::new(
            FileHandle::new(1, 10, 1),
            0,
            vec![7u8; 8192],
        )),
    );
    bench("xdr/encode_8k_write", 2000, || call.to_wire());
    let wire = call.to_wire();
    bench("xdr/decode_8k_write", 2000, || {
        NfsCall::from_wire(&wire).unwrap()
    });
}

fn bench_ufs() {
    bench("ufs/delayed_write_plus_clustered_flush_1mb", 200, || {
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "f", 0o644, 0).unwrap();
        for i in 0..128u64 {
            fs.write(ino, i * 8192, &[1u8; 8192], WriteFlags::DelayData, i)
                .unwrap();
        }
        let plan = fs.fsync(ino, FsyncFlags::All).unwrap();
        assert!(plan.transactions() < 32);
        plan.transactions()
    });
    bench("ufs/synchronous_writes_1mb", 200, || {
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "f", 0o644, 0).unwrap();
        let mut ops = 0;
        for i in 0..128u64 {
            ops += fs
                .write(ino, i * 8192, &[1u8; 8192], WriteFlags::Sync, i)
                .unwrap()
                .io
                .transactions();
        }
        ops
    });
}

fn bench_devices() {
    bench("devices/rz26_random_8k_writes", 500, || {
        let mut disk = Disk::rz26();
        let mut now = SimTime::ZERO;
        for i in 0..256u64 {
            now = disk.submit(
                now,
                DiskRequest::write((i * 7919 * 8192) % 900_000_000, 8192),
            );
        }
        now
    });
    bench("devices/stripe_sequential_64k_writes", 500, || {
        let mut set = StripeSet::three_rz26();
        let mut now = SimTime::ZERO;
        for i in 0..256u64 {
            now = set.submit(now, DiskRequest::write(i * 65536, 65536));
        }
        now
    });
    bench("devices/presto_accepts_8k_writes", 500, || {
        let mut p = Presto::with_defaults(Disk::rz26());
        let mut now = SimTime::ZERO;
        for i in 0..256u64 {
            now = p.submit(now, DiskRequest::write(i * 8192, 8192));
        }
        now
    });
}

fn bench_server() {
    for (name, policy) in [
        ("server/standard_write_path", WritePolicy::Standard),
        ("server/gathering_write_path", WritePolicy::Gathering),
    ] {
        bench(name, 100, || {
            let mut cfg = ServerConfig::standard();
            cfg.policy = policy;
            let mut server = NfsServer::new(cfg);
            let root = server.fs().root();
            let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
            let fh = server.handle_for_ino(ino).unwrap();
            let mut queue = wg_simcore::EventQueue::new();
            for i in 0..64u64 {
                let call = NfsCall::new(
                    Xid(i as u32),
                    NfsCallBody::Write(WriteArgs::new(fh, (i * 8192) as u32, vec![1u8; 8192])),
                );
                let size = call.wire_size();
                // Spaced widely enough that the slow (standard) policy never
                // overruns the socket buffer: the benchmark measures
                // per-request processing cost, not overload behaviour.
                queue.schedule_at(
                    SimTime::from_micros(i * 2_000),
                    ServerInput::Datagram {
                        client: 0,
                        call,
                        wire_size: size,
                        fragments: 2,
                    },
                );
            }
            let mut replies = 0usize;
            while let Some((t, input)) = queue.pop() {
                for action in server.handle(t, input) {
                    match action {
                        wg_server::ServerAction::Wakeup { at, token } => {
                            queue.schedule_at(at, ServerInput::Wakeup { token });
                        }
                        wg_server::ServerAction::Reply { .. } => replies += 1,
                    }
                }
            }
            assert!(replies >= 32, "server answered only {replies} of 64 writes");
            replies
        });
    }
}

fn main() {
    bench_xdr();
    bench_ufs();
    bench_devices();
    bench_server();
}
