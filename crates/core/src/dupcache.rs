//! The duplicate request cache.
//!
//! NFS clients retransmit requests they have not seen a reply for; a server
//! that blindly re-executes a retransmitted non-idempotent request (CREATE,
//! REMOVE, and — with gathering — WRITE whose reply is still pending) produces
//! wrong answers or wasted work.  [JUSZ89] introduced the now-standard
//! duplicate request cache: recently executed (xid, client) pairs are
//! remembered together with their replies so a retransmission can be answered
//! from the cache, and requests still *in progress* (for example a gathered
//! write whose reply is deferred) are recognised and dropped rather than
//! re-executed — the paper's §6.9 notes that being too hasty about discarding
//! these is exactly how one orphans writes on the active write queue.

use std::collections::VecDeque;
use std::sync::Arc;
use wg_simcore::FxHashMap;

use wg_nfsproto::{NfsReply, Xid};

/// What the cache knows about a transaction id.
///
/// Completed replies are held (and handed back) behind an [`Arc`], so
/// answering a retransmission from the cache never copies the reply body —
/// for a cached READ reply that used to mean cloning the whole data payload
/// on every lookup hit.
#[derive(Clone, Debug, PartialEq)]
pub enum DupState {
    /// Never seen: execute it.
    New,
    /// Currently being executed (or its reply is deferred on the active write
    /// queue): drop the retransmission, the reply will go out when ready.
    InProgress,
    /// Completed: the cached reply can be resent without re-executing.
    Done(Arc<NfsReply>),
}

/// Key identifying a request: the client plus its transaction id.
pub type DupKey = (u32, Xid);

/// A bounded duplicate request cache.
///
/// Eviction is FIFO over `Done` (and stale) entries only: an `InProgress`
/// entry is the *only* record that a gathered write's reply is still deferred
/// on the active write queue, so evicting one under capacity pressure would
/// let the client's retransmission re-execute as `New` — the §6.9 hazard that
/// re-runs the write and orphans the deferred reply.  `InProgress` keys are
/// rotated to the back of the eviction order instead; only if *every* cached
/// entry is in progress (a pathologically undersized cache) is one forcibly
/// evicted, and [`DuplicateRequestCache::evicted_in_progress`] counts exactly
/// those forced evictions so tests and the CI bench smoke can assert zero.
#[derive(Clone, Debug)]
pub struct DuplicateRequestCache {
    capacity: usize,
    entries: FxHashMap<DupKey, DupState>,
    order: VecDeque<DupKey>,
    hits: u64,
    misses: u64,
    evicted_in_progress: u64,
}

impl DuplicateRequestCache {
    /// Create a cache remembering up to `capacity` transactions.
    pub fn new(capacity: usize) -> Self {
        DuplicateRequestCache {
            capacity: capacity.max(1),
            entries: FxHashMap::default(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evicted_in_progress: 0,
        }
    }

    /// Look up a request.  A miss registers nothing; callers that decide to
    /// execute the request must call [`DuplicateRequestCache::start`].
    ///
    /// A `Done` hit is a reference-count bump, not a reply copy.
    pub fn lookup(&mut self, client: u32, xid: Xid) -> DupState {
        match self.entries.get(&(client, xid)) {
            Some(state) => {
                self.hits += 1;
                state.clone()
            }
            None => {
                self.misses += 1;
                DupState::New
            }
        }
    }

    /// Record that a request has begun executing (or has been queued with a
    /// deferred reply).
    pub fn start(&mut self, client: u32, xid: Xid) {
        self.insert((client, xid), DupState::InProgress);
    }

    /// Record the reply sent for a request so retransmissions can be answered
    /// from the cache.
    pub fn complete(&mut self, client: u32, xid: Xid, reply: Arc<NfsReply>) {
        self.insert((client, xid), DupState::Done(reply));
    }

    fn insert(&mut self, key: DupKey, state: DupState) {
        let fresh = !self.entries.contains_key(&key);
        // Insert before evicting so the new entry's own state takes part in
        // the InProgress-protection scan below (a fresh `start` must never be
        // the entry chosen for eviction).
        self.entries.insert(key, state);
        if fresh {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                self.evict_one();
            }
        }
    }

    /// Evict one entry, preferring the oldest that is not `InProgress`.
    /// In-progress keys encountered on the way are rotated to the back of the
    /// order (they become the "newest" candidates, mirroring how the real
    /// cache refreshes entries it must keep).  If every entry is in progress
    /// the front one is evicted anyway — the cache cannot grow — and the
    /// forced eviction is counted.
    fn evict_one(&mut self) {
        for _ in 0..self.order.len() {
            let Some(front) = self.order.pop_front() else {
                return;
            };
            if matches!(self.entries.get(&front), Some(DupState::InProgress)) {
                self.order.push_back(front);
            } else {
                self.entries.remove(&front);
                return;
            }
        }
        if let Some(front) = self.order.pop_front() {
            self.entries.remove(&front);
            self.evicted_in_progress += 1;
        }
    }

    /// Number of cached transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits (retransmissions recognised).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses (fresh requests).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of `InProgress` entries evicted because the entire cache was in
    /// progress at once.  Any non-zero value means a deferred reply could be
    /// orphaned by a retransmission; tests and the CI bench smoke assert this
    /// stays zero.
    pub fn evicted_in_progress(&self) -> u64 {
        self.evicted_in_progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_nfsproto::{NfsReplyBody, NfsStatus};

    fn reply(xid: u32) -> Arc<NfsReply> {
        Arc::new(NfsReply::new(Xid(xid), NfsReplyBody::Status(NfsStatus::Ok)))
    }

    #[test]
    fn new_then_in_progress_then_done() {
        let mut c = DuplicateRequestCache::new(16);
        assert_eq!(c.lookup(1, Xid(100)), DupState::New);
        c.start(1, Xid(100));
        assert_eq!(c.lookup(1, Xid(100)), DupState::InProgress);
        c.complete(1, Xid(100), reply(100));
        match c.lookup(1, Xid(100)) {
            DupState::Done(r) => assert_eq!(r.xid, Xid(100)),
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn done_hits_share_the_cached_reply() {
        let mut c = DuplicateRequestCache::new(4);
        let cached = reply(7);
        c.complete(1, Xid(7), Arc::clone(&cached));
        let (DupState::Done(a), DupState::Done(b)) = (c.lookup(1, Xid(7)), c.lookup(1, Xid(7)))
        else {
            panic!("expected Done hits");
        };
        // Both hits alias the one cached allocation: replaying a
        // retransmission answer is copy-free.
        assert!(Arc::ptr_eq(&a, &cached));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn clients_do_not_collide() {
        let mut c = DuplicateRequestCache::new(16);
        c.start(1, Xid(5));
        assert_eq!(c.lookup(2, Xid(5)), DupState::New);
        assert_eq!(c.lookup(1, Xid(5)), DupState::InProgress);
    }

    #[test]
    fn capacity_evicts_oldest_done_entries() {
        let mut c = DuplicateRequestCache::new(3);
        for i in 0..5u32 {
            c.start(1, Xid(i));
            c.complete(1, Xid(i), reply(i));
        }
        assert_eq!(c.len(), 3);
        // The two oldest completed entries were evicted and now look new.
        assert_eq!(c.lookup(1, Xid(0)), DupState::New);
        assert_eq!(c.lookup(1, Xid(1)), DupState::New);
        assert!(matches!(c.lookup(1, Xid(4)), DupState::Done(_)));
        assert_eq!(c.evicted_in_progress(), 0);
    }

    #[test]
    fn in_progress_entries_survive_capacity_pressure() {
        // The §6.9 regression: a gathered write's InProgress entry must outlive
        // a flood of completed transactions that overflows the cache.
        let mut c = DuplicateRequestCache::new(3);
        c.start(1, Xid(100)); // the deferred gathered write
        for i in 0..10u32 {
            c.start(1, Xid(i));
            c.complete(1, Xid(i), reply(i));
        }
        // Done entries churned through every slot, but the retransmission of
        // the pending write is still recognised — it is not re-executed.
        assert_eq!(c.lookup(1, Xid(100)), DupState::InProgress);
        assert_eq!(c.len(), 3);
        assert_eq!(c.evicted_in_progress(), 0);
        // Once the deferred reply goes out the entry becomes ordinary Done
        // prey and can be evicted by later traffic.
        c.complete(1, Xid(100), reply(100));
        for i in 20..24u32 {
            c.start(1, Xid(i));
            c.complete(1, Xid(i), reply(i));
        }
        assert_eq!(c.lookup(1, Xid(100)), DupState::New);
        assert_eq!(c.evicted_in_progress(), 0);
    }

    #[test]
    fn all_in_progress_cache_forces_eviction_and_counts_it() {
        let mut c = DuplicateRequestCache::new(3);
        for i in 0..5u32 {
            c.start(1, Xid(i));
        }
        assert_eq!(c.len(), 3);
        // Nothing evictable existed, so the oldest in-progress entries were
        // forced out — and the hazard is visible on the counter.
        assert_eq!(c.evicted_in_progress(), 2);
        assert_eq!(c.lookup(1, Xid(0)), DupState::New);
        assert_eq!(c.lookup(1, Xid(4)), DupState::InProgress);
    }

    #[test]
    fn fresh_start_is_never_its_own_eviction_victim() {
        // Overflowing insert of an InProgress key while every resident entry
        // is Done: the newcomer must stay, the oldest Done must go.
        let mut c = DuplicateRequestCache::new(2);
        c.complete(1, Xid(1), reply(1));
        c.complete(1, Xid(2), reply(2));
        c.start(1, Xid(3));
        assert_eq!(c.lookup(1, Xid(3)), DupState::InProgress);
        assert_eq!(c.lookup(1, Xid(1)), DupState::New);
        assert!(matches!(c.lookup(1, Xid(2)), DupState::Done(_)));
        assert_eq!(c.evicted_in_progress(), 0);
    }

    #[test]
    fn updating_state_does_not_duplicate_order_entries() {
        let mut c = DuplicateRequestCache::new(2);
        c.start(1, Xid(1));
        c.complete(1, Xid(1), reply(1));
        c.start(1, Xid(2));
        assert_eq!(c.len(), 2);
        c.start(1, Xid(3));
        // Xid(1) evicted (it was the oldest), 2 and 3 remain.
        assert_eq!(c.lookup(1, Xid(1)), DupState::New);
        assert!(matches!(c.lookup(1, Xid(2)), DupState::InProgress));
        assert!(!c.is_empty());
    }
}
