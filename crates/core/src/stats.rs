//! Server-side statistics.

use wg_simcore::{Counter, Duration, LatencyStat};

/// Everything the benchmark harness needs from the server side of a run: the
/// CPU and disk numbers reported in the paper's tables, plus gathering
/// effectiveness counters used by the ablation benches and tests.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// WRITE requests completed (replies sent) and payload bytes they carried.
    pub writes_completed: Counter,
    /// Non-write NFS operations completed.
    pub other_ops_completed: Counter,
    /// Per-operation server residence time (arrival to reply transmission),
    /// all operation types.
    pub residence: LatencyStat,
    /// Per-WRITE server residence time.
    pub write_residence: LatencyStat,
    /// Number of metadata flushes performed (VOP_FSYNC calls that issued I/O).
    pub metadata_flushes: u64,
    /// Number of writes whose reply was deferred onto another nfsd's flush.
    pub writes_gathered: u64,
    /// Number of gathered batches by size: `batch_sizes[k]` is how many
    /// flushes covered exactly `k` writes (index 0 unused).
    pub batch_sizes: Vec<u64>,
    /// Procrastination sleeps that ended with at least one extra write
    /// gathered ("successes").
    pub procrastination_hits: u64,
    /// Procrastination sleeps that expired without company ("failures": the
    /// server fell back to standard behaviour for that write).
    pub procrastination_misses: u64,
    /// Requests found already in progress or answered from the duplicate
    /// request cache.
    pub duplicate_requests: u64,
    /// Requests dropped because the socket buffer was full.
    pub socket_drops: u64,
    /// Replies sent in total.
    pub replies_sent: u64,
    /// Injected server crashes survived (fault injection only).
    pub crashes: u64,
    /// Bytes of *acknowledged* write data lost to a crash: data a reply
    /// promised was stable but that was still volatile when the server died.
    /// The recovery oracle — zero for every policy that honours the NFS
    /// stable-storage rule, positive only under
    /// [`crate::WritePolicy::DangerousAsync`].
    pub lost_acked_bytes: u64,
    /// Total dirty (volatile) bytes discarded across injected crashes,
    /// acknowledged or not.
    pub discarded_dirty_bytes: u64,
    /// Datagrams dropped because they arrived while the server was down or
    /// replaying NVRAM during boot recovery.
    pub dropped_during_recovery: u64,
    /// Disk transfer attempts that failed and were retried inside an injected
    /// disk-degradation window.
    pub disk_retries: u64,
    /// NVRAM battery failures injected.
    pub battery_failures: u64,
    /// WRITE requests accepted with `UNSTABLE` semantics: acknowledged from
    /// the unified buffer cache, made stable later by write-behind or COMMIT.
    pub unstable_writes: u64,
    /// COMMIT requests completed.
    pub commits: u64,
    /// Bytes of *unstable* (acknowledged-uncommitted) write data discarded by
    /// a crash.  Unlike [`ServerStats::lost_acked_bytes`] this is loss the
    /// NFSv3 contract permits: the reply's verifier told the client the data
    /// was volatile, and a verifier mismatch after reboot makes the client
    /// re-send it.
    pub lost_unstable_bytes: u64,
    /// WRITE(UNSTABLE) requests the server promoted to FILE_SYNC because it
    /// had no stable destination to lazily drain them to (unified cache
    /// disarmed, or an NVRAM board running write-through on a dead battery).
    pub forced_file_sync: u64,
}

impl ServerStats {
    /// Create zeroed statistics.
    pub fn new() -> Self {
        ServerStats {
            batch_sizes: vec![0; 65],
            ..ServerStats::default()
        }
    }

    /// Record a flush that covered `n` writes.
    pub fn record_batch(&mut self, n: usize) {
        if self.batch_sizes.is_empty() {
            self.batch_sizes = vec![0; 65];
        }
        let idx = n.min(self.batch_sizes.len() - 1);
        self.batch_sizes[idx] += 1;
        self.metadata_flushes += 1;
    }

    /// Mean number of writes covered by one metadata flush.
    pub fn mean_batch_size(&self) -> f64 {
        let total_batches: u64 = self.batch_sizes.iter().sum();
        if total_batches == 0 {
            return 0.0;
        }
        let total_writes: u64 = self
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(k, count)| k as u64 * count)
            .sum();
        total_writes as f64 / total_batches as f64
    }

    /// Client-visible write throughput in KB/s over an observed span.
    pub fn write_kb_per_sec(&self, observed: Duration) -> f64 {
        self.writes_completed.kb_per_sec(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accounting() {
        let mut s = ServerStats::new();
        s.record_batch(1);
        s.record_batch(7);
        s.record_batch(8);
        assert_eq!(s.metadata_flushes, 3);
        assert!((s.mean_batch_size() - 16.0 / 3.0).abs() < 1e-9);
        // Oversized batches clamp into the last bucket instead of panicking.
        s.record_batch(500);
        assert_eq!(s.batch_sizes.last().copied().unwrap(), 1);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = ServerStats::new();
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.write_kb_per_sec(Duration::from_secs(1)), 0.0);
    }

    #[test]
    fn throughput_helper() {
        let mut s = ServerStats::new();
        for _ in 0..10 {
            s.writes_completed.record(8192);
        }
        assert!((s.write_kb_per_sec(Duration::from_secs(1)) - 80.0).abs() < 1e-9);
    }
}
