//! Conversions between filesystem types and protocol types.
//!
//! File handles pack the filesystem id, inode number and generation (see
//! [`wg_nfsproto::FileHandle`]); the helpers here mint handles from inodes,
//! validate presented handles against the live filesystem (producing the
//! `NFSERR_STALE` the paper's §6.9 worries about), and translate attributes
//! and errors between the two vocabularies.

use wg_nfsproto::{Fattr, FileHandle, FileType, NfsStatus, Timeval};
use wg_ufs::{FileAttributes, FileKind, FsError, InodeNumber, Ufs};

/// Mint the file handle for a live inode.
pub fn handle_for(fs: &Ufs, ino: InodeNumber) -> Result<FileHandle, FsError> {
    let generation = fs.generation_of(ino)?;
    Ok(FileHandle::new(fs.fsid(), ino, generation))
}

/// Validate a client-presented handle and extract the inode number.
///
/// Returns [`FsError::StaleInode`] if the filesystem id does not match, the
/// inode no longer exists, or the generation differs (the inode was freed and
/// reused since the client obtained the handle).
pub fn ino_from_handle(fs: &Ufs, handle: &FileHandle) -> Result<InodeNumber, FsError> {
    if handle.fsid() != fs.fsid() {
        return Err(FsError::StaleInode);
    }
    let ino = handle.inode();
    let generation = fs.generation_of(ino)?;
    if generation != handle.generation() {
        return Err(FsError::StaleInode);
    }
    Ok(ino)
}

/// Translate a filesystem error into the NFS status code the v2 protocol
/// defines for it.
pub fn fs_error_to_status(err: FsError) -> NfsStatus {
    match err {
        FsError::StaleInode => NfsStatus::Stale,
        FsError::NotFound => NfsStatus::NoEnt,
        FsError::Exists => NfsStatus::Exist,
        FsError::NotADirectory => NfsStatus::NotDir,
        FsError::IsADirectory => NfsStatus::IsDir,
        FsError::NoSpace => NfsStatus::NoSpc,
        FsError::FileTooLarge => NfsStatus::FBig,
        FsError::NotEmpty => NfsStatus::NotEmpty,
        FsError::NameTooLong => NfsStatus::NameTooLong,
    }
}

/// Build the protocol attribute block from filesystem attributes.
pub fn attributes_to_fattr(fsid: u32, a: &FileAttributes) -> Fattr {
    Fattr {
        ftype: match a.kind {
            FileKind::Regular => FileType::Regular,
            FileKind::Directory => FileType::Directory,
        },
        mode: a.mode,
        nlink: a.nlink,
        uid: a.uid,
        gid: a.gid,
        size: a.size.min(u32::MAX as u64) as u32,
        blocksize: 8192,
        rdev: 0,
        blocks: a.sectors.min(u32::MAX as u64) as u32,
        fsid,
        fileid: a.ino.min(u32::MAX as u64) as u32,
        atime: Timeval::from_nanos(a.atime_nanos),
        mtime: Timeval::from_nanos(a.mtime_nanos),
        ctime: Timeval::from_nanos(a.ctime_nanos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_round_trip_for_live_files() {
        let mut fs = Ufs::with_defaults(7);
        let root = fs.root();
        let ino = fs.create(root, "f", 0o644, 0).unwrap();
        let fh = handle_for(&fs, ino).unwrap();
        assert_eq!(fh.fsid(), 7);
        assert_eq!(ino_from_handle(&fs, &fh).unwrap(), ino);
    }

    #[test]
    fn stale_handles_are_rejected() {
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "f", 0o644, 0).unwrap();
        let fh = handle_for(&fs, ino).unwrap();
        fs.remove(root, "f", 1).unwrap();
        assert_eq!(ino_from_handle(&fs, &fh), Err(FsError::StaleInode));
        // Recreate a file that happens to reuse nothing; the old handle stays
        // stale because the generation moved on.
        let ino2 = fs.create(root, "f", 0o644, 2).unwrap();
        let fh2 = handle_for(&fs, ino2).unwrap();
        assert_ne!(fh.to_wire_bytes(), fh2.to_wire_bytes());
        // Wrong filesystem id is also stale.
        let other = Ufs::with_defaults(2);
        assert_eq!(ino_from_handle(&other, &fh2), Err(FsError::StaleInode));
    }

    #[test]
    fn error_mapping_covers_every_variant() {
        assert_eq!(fs_error_to_status(FsError::StaleInode), NfsStatus::Stale);
        assert_eq!(fs_error_to_status(FsError::NotFound), NfsStatus::NoEnt);
        assert_eq!(fs_error_to_status(FsError::Exists), NfsStatus::Exist);
        assert_eq!(
            fs_error_to_status(FsError::NotADirectory),
            NfsStatus::NotDir
        );
        assert_eq!(fs_error_to_status(FsError::IsADirectory), NfsStatus::IsDir);
        assert_eq!(fs_error_to_status(FsError::NoSpace), NfsStatus::NoSpc);
        assert_eq!(fs_error_to_status(FsError::FileTooLarge), NfsStatus::FBig);
        assert_eq!(fs_error_to_status(FsError::NotEmpty), NfsStatus::NotEmpty);
        assert_eq!(
            fs_error_to_status(FsError::NameTooLong),
            NfsStatus::NameTooLong
        );
    }

    #[test]
    fn fattr_reflects_file_state() {
        let mut fs = Ufs::with_defaults(3);
        let root = fs.root();
        let ino = fs.create(root, "f", 0o640, 0).unwrap();
        fs.write(
            ino,
            0,
            &vec![0u8; 16384],
            wg_ufs::WriteFlags::Sync,
            5_000_000_000,
        )
        .unwrap();
        let attrs = fs.getattr(ino).unwrap();
        let fattr = attributes_to_fattr(fs.fsid(), &attrs);
        assert_eq!(fattr.size, 16384);
        assert_eq!(fattr.mode, 0o640);
        assert_eq!(fattr.ftype, FileType::Regular);
        assert_eq!(fattr.fsid, 3);
        assert_eq!(fattr.mtime.seconds, 5);
        assert!(fattr.blocks >= 32);
        let dir_attrs = fs.getattr(root).unwrap();
        let dir_fattr = attributes_to_fattr(fs.fsid(), &dir_attrs);
        assert_eq!(dir_fattr.ftype, FileType::Directory);
    }
}
