//! The NFS server state machine.
//!
//! One [`NfsServer`] owns everything that lives on the server host: the
//! filesystem, the storage stack, the CPU pool, the sharded request path and
//! the per-file gathering state.  The orchestrator feeds it arriving
//! datagrams and timer wake-ups ([`ServerInput`]) and receives the replies to
//! transmit plus the wake-ups to schedule ([`ServerAction`]).
//!
//! ## Sharding
//!
//! The request path is split into [`ServerConfig::shards`] independent
//! shards.  Each shard owns its own incoming socket queue, its own sub-pool
//! of nfsds and its own duplicate-request-cache partition; an arriving call
//! is routed to the shard of the inode its file handle names (`ino %
//! shards`), so everything keyed by inode — the vnode-lock map, the per-file
//! gather table, the socket-buffer scans of the mbuf hunter — stays local to
//! one shard.  The filesystem, the storage device and the CPU pool
//! ([`wg_simcore::MultiCpu`]) remain shared, as they are on a real multi-core
//! host.  With `shards = 1` and `cores = 1` the dispatch is byte-identical to
//! the paper's monolithic single-CPU server.
//!
//! All storage and CPU latencies are resolved *eagerly*: when an nfsd starts a
//! synchronous write at time `t`, the disk model immediately tells us when the
//! transfers will complete, so the nfsd's busy period and the reply time are
//! computed in one step and the only genuine asynchrony left is the
//! procrastination timer of the gathering policy (and the nfsd-free wake-ups
//! used to pull more work from the socket buffer).

use std::collections::BTreeSet;
use std::sync::Arc;
use wg_simcore::FxHashMap;

use wg_disk::{BlockDevice, DeviceStats, Disk, DiskRequest, StripeSet};
use wg_net::SocketBuffer;
use wg_nfsproto::{
    CommitOk, DirOpOk, NfsCall, NfsCallBody, NfsReply, NfsReplyBody, NfsStatus, Payload, ReadOk,
    RenewOk, StableHow, StatfsOk, StatusReply, WriteArgs, WriteVerfOk, Xid,
};
use wg_nvram::{Presto, PrestoParams};
use wg_simcore::{Duration, MultiCpu, SimTime, Trace, TraceKind};
use wg_ufs::{FsyncFlags, InodeNumber, Ufs, WriteFlags, WriteSource};

/// View a request payload as a filesystem write source without materialising
/// fill patterns — the hand-off that keeps the whole datapath zero-copy.
fn write_source(payload: &Payload) -> WriteSource<'_> {
    match payload.as_fill() {
        Some((byte, len)) => WriteSource::Fill {
            byte,
            len: len as u64,
        },
        None => WriteSource::Bytes(payload.as_bytes().expect("non-fill payload has bytes")),
    }
}

/// Clamp a 64-bit block count into a 32-bit protocol field.
fn saturate_u32(v: u64) -> u32 {
    v.min(u32::MAX as u64) as u32
}

/// Seed of the write/commit boot-instance verifier.  The live verifier is
/// this seed plus the crash count — a pure function of observable server
/// history, so serial and partitioned drivers mint bit-identical verifiers.
const BOOT_VERIFIER_SEED: u64 = 0x1994_0606;

/// Pages one background write-behind pass drains from the unified cache
/// (64 × 8 KB = 512 KB, a few clustered transfers per pass).
const WRITEBACK_BATCH_PAGES: u64 = 64;

use crate::config::{ReplyOrder, ServerConfig, WritePolicy};
use crate::dupcache::{DupState, DuplicateRequestCache};
use crate::gather::{FileGather, GatherPhase, PendingWrite};
use crate::handles::{attributes_to_fattr, fs_error_to_status, handle_for, ino_from_handle};
use crate::state::{ClientStateTable, StateStats};
use crate::stats::ServerStats;

/// Identifies a client host (index into the orchestrator's client table).
pub type ClientId = u32;

/// Inputs delivered to the server by the orchestrator.
#[derive(Clone, Debug)]
pub enum ServerInput {
    /// A datagram carrying one NFS call arrived at the server's NFS socket.
    Datagram {
        /// Which client sent it.
        client: ClientId,
        /// The decoded call.
        call: NfsCall,
        /// Its size on the wire (socket-buffer accounting).
        wire_size: usize,
        /// How many link-layer fragments it arrived in (per-fragment
        /// reassembly CPU cost).
        fragments: u32,
    },
    /// A timer previously requested via [`ServerAction::Wakeup`] fired.
    Wakeup {
        /// The token identifying what to continue.
        token: u64,
    },
}

/// Outputs the orchestrator must act on.
#[derive(Clone, Debug)]
pub enum ServerAction {
    /// Schedule a [`ServerInput::Wakeup`] with this token at the given time.
    Wakeup {
        /// When to wake the server.
        at: SimTime,
        /// Token to echo back.
        token: u64,
    },
    /// Transmit a reply to a client, starting at the given time.
    Reply {
        /// Time the reply is handed to the network.
        at: SimTime,
        /// Destination client.
        client: ClientId,
        /// The reply message.
        reply: NfsReply,
    },
}

/// What a wake-up token means.
#[derive(Clone, Copy, Debug)]
enum WakeReason {
    /// An nfsd of the given shard became free; pull more work from that
    /// shard's socket queue.
    NfsdFree { shard: usize },
    /// A gathering nfsd's procrastination interval (or first-write latency
    /// window) expired for the given file.
    GatherContinue { nfsd: usize, ino: InodeNumber },
    /// The unified cache's background write-behind pass is due: drain one
    /// batch of dirty pages to stable storage and reschedule while dirty
    /// pages remain.
    Writeback,
}

/// A request sitting in the socket buffer.
#[derive(Clone, Debug)]
struct Incoming {
    client: ClientId,
    call: NfsCall,
    fragments: u32,
    arrived: SimTime,
}

/// Per-nfsd bookkeeping.
#[derive(Clone, Copy, Debug)]
struct Nfsd {
    free_at: SimTime,
    /// The shard whose queue this nfsd serves.
    shard: usize,
}

/// One shard of the request path: its own incoming queue and its own
/// duplicate-request-cache partition.  (Its nfsd sub-pool is the set of
/// [`Nfsd`]s whose `shard` field names it.)
struct Shard {
    sockbuf: SocketBuffer<Incoming>,
    dupcache: DuplicateRequestCache,
}

/// An active injected disk-degradation window: transfers submitted inside it
/// fail `retries` times, each failed attempt stalling the request by `stall`,
/// before the final attempt succeeds.
#[derive(Clone, Copy, Debug)]
struct DiskFault {
    from: SimTime,
    until: SimTime,
    stall: Duration,
    retries: u32,
}

/// The NFS server.
pub struct NfsServer {
    config: ServerConfig,
    fs: Ufs,
    device: Box<dyn BlockDevice>,
    accelerated: bool,
    cpu: MultiCpu,
    shards: Vec<Shard>,
    nfsds: Vec<Nfsd>,
    gathers: FxHashMap<InodeNumber, FileGather>,
    vnode_locks: FxHashMap<InodeNumber, SimTime>,
    wake_reasons: FxHashMap<u64, WakeReason>,
    next_token: u64,
    stats: ServerStats,
    trace: Trace,
    /// Scratch buffer for the pipelined I/O loop's completion reap; reused
    /// across plans so the overlapped path stays allocation-free in steady
    /// state, like the rest of the hot loop.
    io_completions: Vec<SimTime>,
    /// While `now < recovering_until` the server is down (crashed, rebooting
    /// or replaying NVRAM) and every arriving datagram is dropped.
    recovering_until: SimTime,
    /// Logical blocks whose write was *acknowledged* while the data was still
    /// volatile — only [`WritePolicy::DangerousAsync`] ever populates this.
    /// The crash oracle walks it to count acknowledged-write loss.
    acked_volatile: FxHashMap<InodeNumber, BTreeSet<u64>>,
    /// Logical blocks acknowledged with `UNSTABLE` semantics and not yet
    /// covered by a COMMIT.  The crash oracle walks it to count the loss the
    /// NFSv3 contract *permits* ([`ServerStats::lost_unstable_bytes`]) —
    /// clients holding a mismatching verifier re-send this data.
    unstable_acked: FxHashMap<InodeNumber, BTreeSet<u64>>,
    /// The current boot instance's write verifier (changes on every crash).
    boot_verifier: u64,
    /// Whether the NVRAM battery is healthy (always true for plain disks).
    /// With Presto on a dead battery the server stops accepting `UNSTABLE`
    /// writes — like the real board it degrades to synchronous write-through
    /// rather than promising lazy stability it cannot deliver cheaply.
    battery_ok: bool,
    /// Whether a [`WakeReason::Writeback`] pass is already on the timer
    /// wheel (one pass in flight at a time keeps the drain rate equal to the
    /// configured interval).
    writeback_scheduled: bool,
    /// Active injected disk-degradation window, if any.
    disk_fault: Option<DiskFault>,
    /// `InProgress` dupcache evictions accumulated from shard partitions that
    /// were discarded by earlier crashes (the live partitions' counts are
    /// added on top).
    pre_crash_evicted_in_progress: u64,
    /// Per-client leases, locks and grace-period recovery; only consulted
    /// when [`ServerConfig::leases`] is set (one untaken branch otherwise).
    state: ClientStateTable,
}

impl NfsServer {
    /// Build a server (filesystem, storage stack, nfsd pool) from a
    /// configuration.
    pub fn new(config: ServerConfig) -> Self {
        // A pipelined server also drains NVRAM with queued submission, so
        // Presto's background drains overlap spindles just like plan I/O.
        let presto_params = PrestoParams::default().with_queued_submission(config.io_overlap);
        let device: Box<dyn BlockDevice> =
            match (config.storage.spindles, config.storage.prestoserve) {
                (1, false) => Box::new(Disk::rz26()),
                (1, true) => Box::new(Presto::new(presto_params, Disk::rz26())),
                (n, false) => Box::new(StripeSet::new(n, wg_disk::DiskParams::rz26(), 64 * 1024)),
                (n, true) => Box::new(Presto::new(
                    presto_params,
                    StripeSet::new(n, wg_disk::DiskParams::rz26(), 64 * 1024),
                )),
            };
        let accelerated = config.storage.prestoserve;
        let shard_count = config.shards.max(1);
        // Every shard needs at least one nfsd; round-robin assignment keeps
        // the sub-pools balanced and, at shards = 1, reproduces the original
        // single pool (all nfsds on shard 0, lowest index preferred).
        let nfsd_count = config.nfsds.max(1).max(shard_count);
        let nfsds: Vec<Nfsd> = (0..nfsd_count)
            .map(|i| Nfsd {
                free_at: SimTime::ZERO,
                shard: i % shard_count,
            })
            .collect();
        // The dupcache partitions split the configured entry budget; each
        // shard keeps its own incoming queue at the full socket-buffer size
        // (a real sharded server binds one receive queue per shard).
        let dup_entries = config.dupcache_entries.max(1).div_ceil(shard_count);
        // Like the dupcache, the socket-buffer memory is one machine-wide
        // pool partitioned across the shards, not multiplied by them: a
        // sharded server must not buffer (and overload-delay) four times as
        // much traffic as the monolithic one just because dispatch is split.
        // The floor keeps each shard able to hold at least one full 8 KB
        // write datagram (a shard that can't accept any write would livelock
        // its clients); with extreme shard counts over a tiny pool the floor
        // wins and the aggregate exceeds the configured total.
        let sockbuf_bytes = (config.socket_buffer_bytes / shard_count).max(9 * 1024);
        let shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard {
                sockbuf: SocketBuffer::with_capacity(sockbuf_bytes),
                dupcache: DuplicateRequestCache::new(dup_entries),
            })
            .collect();
        let fs_params = wg_ufs::FsParams {
            data_capacity: config.data_capacity,
            inode_groups: config.inode_groups.max(1) as u64,
            read_caching: config.read_caching,
            cache_pages: if config.unified_cache {
                config.cache_pages
            } else {
                0
            },
            dirty_ratio: config.dirty_ratio,
            ..wg_ufs::FsParams::default()
        };
        NfsServer {
            cpu: MultiCpu::with_speed(config.cores.max(1), config.cpu_speed),
            fs: Ufs::new(1, fs_params),
            device,
            accelerated,
            shards,
            nfsds,
            gathers: FxHashMap::default(),
            vnode_locks: FxHashMap::default(),
            wake_reasons: FxHashMap::default(),
            next_token: 0,
            stats: ServerStats::new(),
            trace: Trace::disabled(),
            io_completions: Vec::new(),
            recovering_until: SimTime::ZERO,
            acked_volatile: FxHashMap::default(),
            unstable_acked: FxHashMap::default(),
            boot_verifier: BOOT_VERIFIER_SEED,
            battery_ok: true,
            writeback_scheduled: false,
            disk_fault: None,
            pre_crash_evicted_in_progress: 0,
            state: ClientStateTable::new(shard_count, config.lease_duration, config.grace_period),
            config,
        }
    }

    /// Enable event tracing (used by the Figure 1 harness and the
    /// `timeline_trace` example).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The server's filesystem (exports, test setup, read-back verification).
    pub fn fs(&self) -> &Ufs {
        &self.fs
    }

    /// Mutable access to the filesystem for experiment setup (pre-creating
    /// files outside the measured window).
    pub fn fs_mut(&mut self) -> &mut Ufs {
        &mut self.fs
    }

    /// The root directory's file handle, which clients obtain out of band (via
    /// the MOUNT protocol in real deployments).
    pub fn root_handle(&self) -> wg_nfsproto::FileHandle {
        handle_for(&self.fs, self.fs.root()).expect("root always exists")
    }

    /// Mint a handle for an inode created through [`NfsServer::fs_mut`].
    pub fn handle_for_ino(&self, ino: InodeNumber) -> Option<wg_nfsproto::FileHandle> {
        handle_for(&self.fs, ino).ok()
    }

    /// Server-side statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Storage-device statistics (the "server disk" rows of the tables).
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// Per-spindle breakdown of the storage device's activity: one entry per
    /// member of a stripe set (a single entry for a lone disk), each with its
    /// own busy time and deepest observed queue.  The scale sweep records
    /// this so overlap wins show up as spindle utilisation.
    pub fn spindle_stats(&self) -> Vec<wg_disk::SpindleStats> {
        self.device.spindle_stats()
    }

    /// CPU utilisation percentage over an observed span.
    pub fn cpu_utilization_percent(&self, observed: Duration) -> f64 {
        self.cpu.utilization_percent(observed)
    }

    /// Clear measurement state (device stats, CPU busy time, server stats)
    /// without touching filesystem contents.  Called by the harness between
    /// the warm-up/setup phase and the measured phase.
    pub fn reset_measurement(&mut self) {
        self.device.reset_stats();
        self.cpu = MultiCpu::with_speed(self.config.cores.max(1), self.config.cpu_speed);
        self.stats = ServerStats::new();
    }

    /// The number of datagrams dropped because a shard's socket buffer was
    /// full, summed over all shards.
    pub fn socket_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.sockbuf.dropped()).sum()
    }

    /// Number of request-path shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `InProgress` duplicate-cache entries forcibly evicted under capacity
    /// pressure, summed over every shard's partition.  Non-zero means a
    /// deferred gathered-write reply could have been orphaned (§6.9); tests
    /// and the CI bench smoke assert this stays zero.
    pub fn dupcache_evicted_in_progress(&self) -> u64 {
        self.pre_crash_evicted_in_progress
            + self
                .shards
                .iter()
                .map(|s| s.dupcache.evicted_in_progress())
                .sum::<u64>()
    }

    /// Bytes of dirty, un-committed data currently in server memory.  For the
    /// policies that honour the NFS stable-storage rule this is transient
    /// (non-zero only while writes are in flight); for
    /// [`WritePolicy::DangerousAsync`] it grows without bound — which is what
    /// the crash-consistency tests assert.
    pub fn uncommitted_bytes(&self) -> u64 {
        self.fs.dirty_bytes()
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Process one input, producing actions for the orchestrator.
    pub fn handle(&mut self, now: SimTime, input: ServerInput) -> Vec<ServerAction> {
        let mut actions = Vec::new();
        self.handle_into(now, input, &mut actions);
        actions
    }

    /// Process one input, appending actions to a caller-owned buffer.
    ///
    /// Orchestrators driving millions of events reuse one scratch vector
    /// across the whole run instead of allocating a fresh `Vec` per event —
    /// see `FileCopySystem::run`.
    pub fn handle_into(
        &mut self,
        now: SimTime,
        input: ServerInput,
        actions: &mut Vec<ServerAction>,
    ) {
        match input {
            ServerInput::Datagram {
                client,
                call,
                wire_size,
                fragments,
            } => {
                self.on_datagram(now, client, call, wire_size, fragments, actions);
            }
            ServerInput::Wakeup { token } => {
                if let Some(reason) = self.wake_reasons.remove(&token) {
                    match reason {
                        WakeReason::NfsdFree { shard } => {
                            self.dispatch(now, shard, actions);
                        }
                        WakeReason::GatherContinue { nfsd, ino } => {
                            self.continue_gather(now, nfsd, ino, actions);
                        }
                        WakeReason::Writeback => self.background_writeback(now, actions),
                    }
                }
            }
        }
    }

    /// The shard owning an inode's request state.
    fn shard_of_ino(&self, ino: InodeNumber) -> usize {
        (ino % self.shards.len() as u64) as usize
    }

    /// Route a call to a shard by the inode its file handle names.  The raw
    /// handle bytes are used (no staleness check), so a retransmission always
    /// lands on the same shard — and therefore the same dupcache partition —
    /// as the original, even if the file has since been removed.
    fn shard_of_call(&self, call: &NfsCall) -> usize {
        let handle = match &call.body {
            NfsCallBody::Write(a) => &a.file,
            NfsCallBody::Commit(a) => &a.file,
            NfsCallBody::Read(a) => &a.file,
            NfsCallBody::Getattr(a) | NfsCallBody::Statfs(a) => &a.file,
            NfsCallBody::Setattr(a) => &a.file,
            NfsCallBody::Lookup(a) | NfsCallBody::Remove(a) => &a.dir,
            NfsCallBody::Readdir(a) => &a.dir,
            NfsCallBody::Create(a) => &a.where_.dir,
            // State ops are routed by client, not inode: a client's lease,
            // locks and seqids live in the state-table shard `client_id %
            // shards`, and keeping its RENEW/LOCK stream on one dupcache
            // partition preserves the retransmission guarantees.
            NfsCallBody::Renew(a) => return a.client_id as usize % self.shards.len(),
            NfsCallBody::Lock(a) => return a.client_id as usize % self.shards.len(),
            NfsCallBody::Unlock(a) => return a.client_id as usize % self.shards.len(),
            NfsCallBody::Null => return 0,
        };
        self.shard_of_ino(handle.inode())
    }

    fn on_datagram(
        &mut self,
        now: SimTime,
        client: ClientId,
        call: NfsCall,
        wire_size: usize,
        fragments: u32,
        actions: &mut Vec<ServerAction>,
    ) {
        // A crashed or recovering server hears nothing: the NIC is down and
        // the socket does not exist yet.  Clients find out via their
        // retransmission timers, exactly as with a lost datagram.
        if now < self.recovering_until {
            self.stats.dropped_during_recovery += 1;
            return;
        }
        // The detail strings are only built when tracing is on: the hot loop
        // must not pay a `format!` allocation per datagram.
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                TraceKind::RequestArrived,
                call.xid.0 as u64,
                format!("{:?} ({} bytes)", call.body.procedure(), wire_size),
            );
        }
        let shard = self.shard_of_call(&call);
        // Duplicate request handling happens before queueing, as the real
        // server does it in the dispatch path: drop in-progress duplicates,
        // answer completed ones from the cache.
        let dup = self.shards[shard].dupcache.lookup(client, call.xid);
        match dup {
            DupState::InProgress => {
                self.stats.duplicate_requests += 1;
                return;
            }
            DupState::Done(reply) => {
                self.stats.duplicate_requests += 1;
                let at = self.cpu.run(now, self.config.costs.reply_send);
                // The cached reply is shared; cloning it re-uses the payload
                // allocation (if any) rather than copying it.
                actions.push(ServerAction::Reply {
                    at,
                    client,
                    reply: (*reply).clone(),
                });
                return;
            }
            DupState::New => {}
        }
        let incoming = Incoming {
            client,
            call,
            fragments,
            arrived: now,
        };
        if !self.shards[shard].sockbuf.offer(wire_size, incoming) {
            self.stats.socket_drops += 1;
            self.trace
                .record(now, TraceKind::RequestDropped, 0, "socket buffer full");
            return;
        }
        self.dispatch(now, shard, actions);
    }

    /// Assign one shard's queued requests to its idle nfsds.
    fn dispatch(&mut self, now: SimTime, shard: usize, actions: &mut Vec<ServerAction>) {
        loop {
            if self.shards[shard].sockbuf.is_empty() {
                return;
            }
            let Some(nfsd) = self.find_idle_nfsd(shard, now) else {
                return;
            };
            let Some(incoming) = self.shards[shard].sockbuf.take() else {
                return;
            };
            self.process_request(now, nfsd, incoming, actions);
        }
    }

    fn find_idle_nfsd(&self, shard: usize, now: SimTime) -> Option<usize> {
        self.nfsds
            .iter()
            .enumerate()
            .filter(|(_, d)| d.shard == shard && d.free_at <= now)
            .map(|(i, _)| i)
            .next()
    }

    fn schedule_wakeup(
        &mut self,
        at: SimTime,
        reason: WakeReason,
        actions: &mut Vec<ServerAction>,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        self.wake_reasons.insert(token, reason);
        actions.push(ServerAction::Wakeup { at, token });
    }

    /// Mark an nfsd busy until `until` and arrange for its shard's dispatcher
    /// to run when it frees up.
    fn occupy_nfsd(&mut self, nfsd: usize, until: SimTime, actions: &mut Vec<ServerAction>) {
        self.nfsds[nfsd].free_at = until;
        let shard = self.nfsds[nfsd].shard;
        self.schedule_wakeup(until, WakeReason::NfsdFree { shard }, actions);
    }

    fn vnode_free(&self, ino: InodeNumber) -> SimTime {
        self.vnode_locks.get(&ino).copied().unwrap_or(SimTime::ZERO)
    }

    fn process_request(
        &mut self,
        now: SimTime,
        nfsd: usize,
        incoming: Incoming,
        actions: &mut Vec<ServerAction>,
    ) {
        let Incoming {
            client,
            call,
            fragments,
            arrived,
        } = incoming;
        let shard = self.nfsds[nfsd].shard;
        self.shards[shard].dupcache.start(client, call.xid);
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                TraceKind::NfsdStart,
                nfsd as u64,
                format!("xid {} {:?}", call.xid.0, call.body.procedure()),
            );
        }
        // Per-fragment reassembly plus RPC dispatch.
        let cost = self
            .config
            .costs
            .packet_reassembly
            .saturating_mul(fragments as u64)
            + self.config.costs.rpc_dispatch;
        let t = self.cpu.run(now, cost);
        let xid = call.xid;
        match call.body {
            NfsCallBody::Write(args) => {
                self.handle_write(t, nfsd, client, xid, arrived, args, actions)
            }
            // A state op against a disarmed state layer is refused outright
            // (a v2 server with no lockd): the table must stay empty so the
            // default configuration remains stateless.
            body @ (NfsCallBody::Renew(_) | NfsCallBody::Lock(_) | NfsCallBody::Unlock(_))
                if !self.config.leases =>
            {
                let reply_body = match body {
                    NfsCallBody::Renew(_) => {
                        NfsReplyBody::Renew(StatusReply::Err(NfsStatus::Denied))
                    }
                    NfsCallBody::Lock(_) => NfsReplyBody::Lock(StatusReply::Err(NfsStatus::Denied)),
                    _ => NfsReplyBody::Status(NfsStatus::Denied),
                };
                let done = self.cpu.run(t, self.config.costs.lightweight_op);
                self.stats.other_ops_completed.record(0);
                let reply_at =
                    self.finish_reply(done, nfsd, client, xid, arrived, reply_body, actions);
                self.occupy_nfsd(nfsd, reply_at, actions);
            }
            other => self.handle_simple(t, nfsd, client, xid, arrived, other, actions),
        }
    }

    // ------------------------------------------------------------------
    // Non-write operations
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_simple(
        &mut self,
        t: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        body: NfsCallBody,
        actions: &mut Vec<ServerAction>,
    ) {
        let now_nanos = t.as_nanos();
        let light = self.config.costs.lightweight_op;
        let mut done = self.cpu.run(t, light);
        let reply_body = match body {
            NfsCallBody::Null => NfsReplyBody::Null,
            NfsCallBody::Getattr(a) => NfsReplyBody::Attr(self.attr_reply(&a.file)),
            // The v2 statfs fields are 32-bit; a large configured
            // `data_capacity` overflows them, so the counts saturate instead
            // of wrapping (a wrapped `blocks` reads as a nearly empty disk).
            NfsCallBody::Statfs(_a) => NfsReplyBody::Statfs(StatusReply::Ok(StatfsOk {
                tsize: 8192,
                bsize: 8192,
                blocks: saturate_u32(self.fs.total_block_count()),
                bfree: saturate_u32(self.fs.free_block_count()),
                bavail: saturate_u32(self.fs.free_block_count()),
            })),
            NfsCallBody::Lookup(a) => match ino_from_handle(&self.fs, &a.dir)
                .and_then(|dir| self.fs.lookup(dir, &a.name))
            {
                Ok(ino) => match (handle_for(&self.fs, ino), self.fs.getattr(ino)) {
                    (Ok(fh), Ok(attrs)) => NfsReplyBody::DirOp(StatusReply::Ok(DirOpOk {
                        file: fh,
                        attributes: attributes_to_fattr(self.fs.fsid(), &attrs),
                    })),
                    _ => NfsReplyBody::DirOp(StatusReply::Err(NfsStatus::Io)),
                },
                Err(e) => NfsReplyBody::DirOp(StatusReply::Err(fs_error_to_status(e))),
            },
            NfsCallBody::Readdir(a) => {
                // The filesystem memoises the listing behind an Arc; the reply
                // (and any cached replay of it) shares that allocation.
                match ino_from_handle(&self.fs, &a.dir).and_then(|dir| self.fs.readdir(dir)) {
                    Ok(names) => NfsReplyBody::Readdir(StatusReply::Ok(names)),
                    Err(e) => NfsReplyBody::Readdir(StatusReply::Err(fs_error_to_status(e))),
                }
            }
            NfsCallBody::Setattr(a) => match ino_from_handle(&self.fs, &a.file).and_then(|ino| {
                let size = if a.attributes.size == u32::MAX {
                    None
                } else {
                    Some(a.attributes.size as u64)
                };
                let mode = if a.attributes.mode == u32::MAX {
                    None
                } else {
                    Some(a.attributes.mode)
                };
                self.fs.setattr(ino, mode, size, now_nanos)
            }) {
                Ok((attrs, plan)) => {
                    done = self.run_io_plan(done, plan.data.iter().chain(plan.metadata.iter()));
                    NfsReplyBody::Attr(StatusReply::Ok(attributes_to_fattr(self.fs.fsid(), &attrs)))
                }
                Err(e) => NfsReplyBody::Attr(StatusReply::Err(fs_error_to_status(e))),
            },
            NfsCallBody::Create(a) => {
                let mode = if a.attributes.mode == u32::MAX {
                    0o644
                } else {
                    a.attributes.mode
                };
                match ino_from_handle(&self.fs, &a.where_.dir)
                    .and_then(|dir| self.fs.create(dir, &a.where_.name, mode, now_nanos))
                {
                    Ok(ino) => {
                        // A create changes the directory and the new inode; both
                        // metadata updates must be stable before the reply.
                        let dir_ino = ino_from_handle(&self.fs, &a.where_.dir).expect("checked");
                        let mut plan = self
                            .fs
                            .fsync(dir_ino, FsyncFlags::MetadataOnly)
                            .unwrap_or_default();
                        if let Ok(p) = self.fs.fsync(ino, FsyncFlags::MetadataOnly) {
                            plan.extend(p);
                        }
                        done = self.run_io_plan(done, plan.data.iter().chain(plan.metadata.iter()));
                        match (handle_for(&self.fs, ino), self.fs.getattr(ino)) {
                            (Ok(fh), Ok(attrs)) => NfsReplyBody::DirOp(StatusReply::Ok(DirOpOk {
                                file: fh,
                                attributes: attributes_to_fattr(self.fs.fsid(), &attrs),
                            })),
                            _ => NfsReplyBody::DirOp(StatusReply::Err(NfsStatus::Io)),
                        }
                    }
                    Err(e) => NfsReplyBody::DirOp(StatusReply::Err(fs_error_to_status(e))),
                }
            }
            NfsCallBody::Remove(a) => match ino_from_handle(&self.fs, &a.dir)
                .and_then(|dir| self.fs.remove(dir, &a.name, now_nanos).map(|()| dir))
            {
                Ok(dir) => {
                    let plan = self
                        .fs
                        .fsync(dir, FsyncFlags::MetadataOnly)
                        .unwrap_or_default();
                    done = self.run_io_plan(done, plan.data.iter().chain(plan.metadata.iter()));
                    NfsReplyBody::Status(NfsStatus::Ok)
                }
                Err(e) => NfsReplyBody::Status(fs_error_to_status(e)),
            },
            NfsCallBody::Read(a) => match ino_from_handle(&self.fs, &a.file).and_then(|ino| {
                self.fs
                    .read(ino, a.offset as u64, a.count as u64)
                    .map(|r| (ino, r))
            }) {
                Ok((ino, outcome)) => {
                    // Charge the buffer-cache copy (the simulated uiomove —
                    // the real kernel copies even though the simulator no
                    // longer does) and any disk reads for missed blocks.
                    let copy = Duration::from_nanos(
                        self.config.costs.copy_per_byte.as_nanos() * outcome.len() as u64,
                    );
                    done = self.cpu.run(done, copy);
                    done = self.run_io_plan(done, outcome.misses.iter());
                    let attrs = self.fs.getattr(ino).expect("inode is live");
                    // The payload rides the reply as-is: a fill pattern or a
                    // refcounted view of the buffer cache, never a fresh copy.
                    NfsReplyBody::Read(StatusReply::Ok(ReadOk {
                        attributes: attributes_to_fattr(self.fs.fsid(), &attrs),
                        data: outcome.data,
                    }))
                }
                Err(e) => NfsReplyBody::Read(StatusReply::Err(fs_error_to_status(e))),
            },
            // COMMIT: make a previously `UNSTABLE`-acknowledged range stable.
            // VOP_SYNCDATA over the range, one metadata flush, and the reply
            // carries the boot verifier the client compares against its
            // remembered write verifiers.  Committing already-stable data
            // (e.g. after write-behind drained it) finds nothing dirty and
            // replies at CPU speed.
            NfsCallBody::Commit(a) => match ino_from_handle(&self.fs, &a.file) {
                Ok(ino) => {
                    let from = a.offset as u64;
                    let to = if a.count == 0 {
                        u64::MAX
                    } else {
                        from + a.count as u64
                    };
                    done = done.max(self.vnode_free(ino));
                    done = self.cpu.run(done, self.config.costs.ufs_trip);
                    let data_plan = self.fs.sync_data(ino, from, to).unwrap_or_default();
                    let meta_plan = self
                        .fs
                        .fsync(ino, FsyncFlags::MetadataOnly)
                        .unwrap_or_default();
                    done = self.run_io_plan(done, data_plan.data.iter());
                    if !meta_plan.metadata.is_empty() {
                        done = self.run_io_plan(done, meta_plan.metadata.iter());
                        self.stats.metadata_flushes += 1;
                    }
                    self.vnode_locks.insert(ino, done);
                    self.stats.commits += 1;
                    self.commit_clears_unstable(ino, from, to);
                    match self.fs.getattr(ino) {
                        Ok(attrs) => NfsReplyBody::Commit(StatusReply::Ok(CommitOk {
                            attributes: attributes_to_fattr(self.fs.fsid(), &attrs),
                            verf: self.boot_verifier,
                        })),
                        Err(e) => NfsReplyBody::Commit(StatusReply::Err(fs_error_to_status(e))),
                    }
                }
                Err(e) => NfsReplyBody::Commit(StatusReply::Err(fs_error_to_status(e))),
            },
            // Client-state ops (lease renewal and byte-range locks).  All
            // three are pure table operations at lightweight-op CPU cost —
            // no storage I/O, matching lockd/statd behaviour.
            // `process_request` bounces them with `Denied` before we get
            // here when the state layer is disarmed.
            NfsCallBody::Renew(a) => {
                let in_grace = self.state.renew(a.client_id, a.verifier, t);
                NfsReplyBody::Renew(StatusReply::Ok(RenewOk {
                    verf: self.boot_verifier,
                    in_grace,
                }))
            }
            NfsCallBody::Lock(a) => match self.state.lock(&a, t) {
                Ok(ok) => NfsReplyBody::Lock(StatusReply::Ok(ok)),
                Err(status) => NfsReplyBody::Lock(StatusReply::Err(status)),
            },
            NfsCallBody::Unlock(a) => NfsReplyBody::Status(self.state.unlock(&a, t)),
            NfsCallBody::Write(_) => unreachable!("writes are handled by handle_write"),
        };
        self.stats.other_ops_completed.record(0);
        let reply_at = self.finish_reply(done, nfsd, client, xid, arrived, reply_body, actions);
        self.occupy_nfsd(nfsd, reply_at, actions);
    }

    fn attr_reply(&mut self, fh: &wg_nfsproto::FileHandle) -> StatusReply<wg_nfsproto::Fattr> {
        match ino_from_handle(&self.fs, fh).and_then(|ino| self.fs.getattr(ino)) {
            Ok(attrs) => StatusReply::Ok(attributes_to_fattr(self.fs.fsid(), &attrs)),
            Err(e) => StatusReply::Err(fs_error_to_status(e)),
        }
    }

    /// The CPU cost of handing one transfer to the storage driver.
    /// Accelerated filesystems pay the Presto driver entry plus the CPU copy
    /// of the payload into NVRAM; plain disks only pay the driver setup (the
    /// data moves by DMA).
    fn driver_trip_cost(&self, req: &DiskRequest) -> Duration {
        if self.accelerated {
            self.config.costs.driver_trip
                + self.config.costs.presto_trip
                + Duration::from_nanos(self.config.costs.copy_per_byte.as_nanos() * req.len)
        } else {
            self.config.costs.driver_trip
        }
    }

    fn trace_data_to_disk(&mut self, submit_at: SimTime, req: &DiskRequest) {
        if self.trace.is_enabled() {
            let kind = if req.kind == wg_disk::IoKind::Write {
                "write"
            } else {
                "read"
            };
            self.trace.record(
                submit_at,
                TraceKind::DataToDisk,
                req.len,
                format!("{kind} {} bytes @ {}", req.len, req.addr),
            );
        }
    }

    /// Execute a sequence of device requests, charging the driver setup and
    /// interrupt handling to the CPU.  Returns the time everything is stable.
    ///
    /// With [`ServerConfig::io_overlap`] off this is the paper's serial
    /// driver: each transfer's setup, device service and completion
    /// interrupt chain on the previous transfer's completion.  With it on,
    /// the plan is *pipelined* (see [`NfsServer::run_io_plan_pipelined`]).
    ///
    /// These costs are accounted with [`Cpu::run_overlapped`] rather than the
    /// serialising [`Cpu::run`]: the transfers complete at simulated times in
    /// the *future* relative to the event being processed, and letting them
    /// reserve the serial CPU ahead of time would head-of-line block requests
    /// that in reality would have been dispatched in between.  Utilisation
    /// accounting is unaffected.
    fn run_io_plan<'a>(
        &mut self,
        start: SimTime,
        reqs: impl Iterator<Item = &'a DiskRequest>,
    ) -> SimTime {
        if self.config.io_overlap {
            return self.run_io_plan_pipelined(start, reqs);
        }
        let mut done = start;
        for req in reqs {
            let trip = self.driver_trip_cost(req);
            let issue_at = self.cpu.run_overlapped(done, trip);
            let submit_at = self.disk_fault_delay(issue_at);
            let io_done = self.device.submit(submit_at, *req);
            done = self
                .cpu
                .run_overlapped(io_done, self.config.costs.interrupt);
            self.trace_data_to_disk(submit_at, req);
        }
        done
    }

    /// The pipelined issue loop: pay the driver/Presto trips back-to-back to
    /// *enqueue* every transfer of the plan onto its spindle's own FIFO
    /// queue ([`BlockDevice::submit_at`]), then reap completions in
    /// completion order.  Each transfer still costs one interrupt, but a
    /// completion landing while the CPU is finishing the previous handler is
    /// serviced back-to-back — the natural interrupt coalescing of a busy
    /// driver.  Transfers of one plan thus overlap on independent spindles,
    /// and a shard's WRITE no longer idles the device while the CPU sets up
    /// the next transfer.
    fn run_io_plan_pipelined<'a>(
        &mut self,
        start: SimTime,
        reqs: impl Iterator<Item = &'a DiskRequest>,
    ) -> SimTime {
        let mut completions = std::mem::take(&mut self.io_completions);
        completions.clear();
        let mut submit_clock = start;
        for req in reqs {
            let trip = self.driver_trip_cost(req);
            submit_clock = self.cpu.run_overlapped(submit_clock, trip);
            let submit_at = self.disk_fault_delay(submit_clock);
            let io_done = self.device.submit_at(submit_at, *req);
            completions.push(io_done);
            self.trace_data_to_disk(submit_at, req);
        }
        completions.sort_unstable();
        let mut done = submit_clock;
        for &io_done in completions.iter() {
            done = self
                .cpu
                .run_overlapped(done.max(io_done), self.config.costs.interrupt);
        }
        self.io_completions = completions;
        done
    }

    /// Build the reply, charge the send cost, record statistics and hand the
    /// reply to the orchestrator.  The `nfsd` names the thread completing the
    /// request; its shard's dupcache partition — the one that routed the call
    /// — records the reply.
    #[allow(clippy::too_many_arguments)]
    fn finish_reply(
        &mut self,
        done: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        body: NfsReplyBody,
        actions: &mut Vec<ServerAction>,
    ) -> SimTime {
        // Reply construction usually happens right after an I/O completion,
        // i.e. in this event's future; account the cost without reserving the
        // serial CPU ahead of other requests (see `run_io_plan`).
        let at = self.cpu.run_overlapped(done, self.config.costs.reply_send);
        let reply = NfsReply::new(xid, body);
        // Cloning the reply for the cache shares the payload (Payload is
        // either a pattern or an Arc), so this is cheap even for READ data.
        let shard = self.nfsds[nfsd].shard;
        self.shards[shard]
            .dupcache
            .complete(client, xid, Arc::new(reply.clone()));
        self.stats.replies_sent += 1;
        self.stats.residence.record(at.since(arrived));
        self.trace
            .record(at, TraceKind::ReplySent, xid.0 as u64, "");
        actions.push(ServerAction::Reply { at, client, reply });
        at
    }

    // ------------------------------------------------------------------
    // The write path
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_write(
        &mut self,
        t: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        args: WriteArgs,
        actions: &mut Vec<ServerAction>,
    ) {
        let ino = match ino_from_handle(&self.fs, &args.file) {
            Ok(ino) => ino,
            Err(e) => {
                let reply_at = self.finish_reply(
                    t,
                    nfsd,
                    client,
                    xid,
                    arrived,
                    NfsReplyBody::Attr(StatusReply::Err(fs_error_to_status(e))),
                    actions,
                );
                self.occupy_nfsd(nfsd, reply_at, actions);
                return;
            }
        };
        // Lease gate: a *registered* client whose lease has expired had its
        // state revoked, and its writes are refused with `Expired` until it
        // re-registers (unregistered clients keep writing statelessly, as in
        // plain v2).  One untaken branch when the state layer is disarmed.
        if self.config.leases && !self.state.write_admitted(client, t) {
            let reply_at = self.finish_reply(
                t,
                nfsd,
                client,
                xid,
                arrived,
                NfsReplyBody::Attr(StatusReply::Err(NfsStatus::Expired)),
                actions,
            );
            self.occupy_nfsd(nfsd, reply_at, actions);
            return;
        }
        // NFSv3-style stability routing rides in front of the paper's policy
        // dispatch: a WRITE marked `UNSTABLE` goes to the unified cache and
        // is acknowledged with a verifier — unless the server has no cheap
        // stable destination to lazily drain it to, in which case it promotes
        // the request to FILE_SYNC (the reply says so via `committed`).
        // Clients that never mark writes unstable (the default, and all of
        // the paper's experiments) take the original paths untouched.
        if args.stable_how() == StableHow::Unstable {
            if self.unstable_write_allowed() {
                self.unstable_write(t, nfsd, client, xid, arrived, ino, &args, actions);
            } else {
                self.stats.forced_file_sync += 1;
                self.standard_write(t, nfsd, client, xid, arrived, ino, &args, true, actions);
            }
            return;
        }
        match self.config.policy {
            WritePolicy::Standard => {
                self.standard_write(t, nfsd, client, xid, arrived, ino, &args, false, actions)
            }
            WritePolicy::DangerousAsync => {
                self.dangerous_write(t, nfsd, client, xid, arrived, ino, &args, actions)
            }
            WritePolicy::Gathering | WritePolicy::FirstWriteLatency => {
                self.gathering_write(t, nfsd, client, xid, arrived, ino, &args, actions)
            }
        }
    }

    /// Whether the server will honour `UNSTABLE` semantics right now.  Needs
    /// the unified cache (the write-behind machinery) and, when an NVRAM
    /// board is the drain target, a healthy battery — a dead battery leaves
    /// write-through as the only stable path, so the server degrades to
    /// synchronous FILE_SYNC exactly as the real board does.
    fn unstable_write_allowed(&self) -> bool {
        self.config.unified_cache && (self.battery_ok || !self.config.storage.prestoserve)
    }

    fn write_copy_cost(&self, len: usize) -> Duration {
        self.config.costs.ufs_trip
            + Duration::from_nanos(self.config.costs.copy_per_byte.as_nanos() * len as u64)
    }

    /// The baseline path: commit data and metadata synchronously under the
    /// vnode lock, then reply.  With `verf_reply` the reply is the v3-style
    /// [`NfsReplyBody::WriteVerf`] carrying `committed = FILE_SYNC` — used
    /// when an `UNSTABLE` request was promoted, so the client learns no
    /// COMMIT is needed.
    #[allow(clippy::too_many_arguments)]
    fn standard_write(
        &mut self,
        t: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        ino: InodeNumber,
        args: &WriteArgs,
        verf_reply: bool,
        actions: &mut Vec<ServerAction>,
    ) {
        let lock_at = t.max(self.vnode_free(ino));
        let t1 = self.cpu.run(lock_at, self.write_copy_cost(args.data.len()));
        let outcome = self.fs.write(
            ino,
            args.offset as u64,
            write_source(&args.data),
            WriteFlags::Sync,
            t1.as_nanos(),
        );
        match outcome {
            Ok(out) => {
                let done = self.run_io_plan(t1, out.io.data.iter().chain(out.io.metadata.iter()));
                if !out.io.metadata.is_empty() {
                    self.trace
                        .record(done, TraceKind::MetadataToDisk, ino, "inode/indirect");
                    self.stats.metadata_flushes += 1;
                }
                self.vnode_locks.insert(ino, done);
                let body = if verf_reply {
                    NfsReplyBody::WriteVerf(match self.attr_reply(&args.file) {
                        StatusReply::Ok(attributes) => StatusReply::Ok(WriteVerfOk {
                            attributes,
                            committed: StableHow::FileSync,
                            verf: self.boot_verifier,
                        }),
                        StatusReply::Err(e) => StatusReply::Err(e),
                    })
                } else {
                    NfsReplyBody::Attr(self.attr_reply(&args.file))
                };
                self.stats.writes_completed.record(args.data.len() as u64);
                self.stats.write_residence.record(done.since(arrived));
                let reply_at = self.finish_reply(done, nfsd, client, xid, arrived, body, actions);
                self.occupy_nfsd(nfsd, reply_at, actions);
            }
            Err(e) => {
                let status = fs_error_to_status(e);
                let body = if verf_reply {
                    NfsReplyBody::WriteVerf(StatusReply::Err(status))
                } else {
                    NfsReplyBody::Attr(StatusReply::Err(status))
                };
                let reply_at = self.finish_reply(t1, nfsd, client, xid, arrived, body, actions);
                self.occupy_nfsd(nfsd, reply_at, actions);
            }
        }
    }

    /// The NFSv3-style unstable path: land the data in the unified cache,
    /// acknowledge immediately with this boot's verifier, and let write-behind
    /// (or the client's COMMIT) make it stable.  The only I/O an unstable
    /// write ever pays inline is the dirty-ratio throttle's forced writeback
    /// — the writer drains part of the backlog it helped create, which *is*
    /// the memory-pressure stall the bench measures.
    #[allow(clippy::too_many_arguments)]
    fn unstable_write(
        &mut self,
        t: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        ino: InodeNumber,
        args: &WriteArgs,
        actions: &mut Vec<ServerAction>,
    ) {
        let lock_at = t.max(self.vnode_free(ino));
        let t1 = self.cpu.run(lock_at, self.write_copy_cost(args.data.len()));
        match self.fs.write(
            ino,
            args.offset as u64,
            write_source(&args.data),
            WriteFlags::DelayData,
            t1.as_nanos(),
        ) {
            Ok(out) => {
                let done = if out.io.data.is_empty() {
                    t1
                } else {
                    self.run_io_plan(t1, out.io.data.iter())
                };
                self.vnode_locks.insert(ino, done);
                if !args.data.is_empty() {
                    let block_size = self.fs.params().block_size;
                    let first = args.offset as u64 / block_size;
                    let last = (args.offset as u64 + args.data.len() as u64 - 1) / block_size;
                    let blocks = self.unstable_acked.entry(ino).or_default();
                    for lbn in first..=last {
                        blocks.insert(lbn);
                    }
                }
                self.stats.unstable_writes += 1;
                self.stats.writes_completed.record(args.data.len() as u64);
                self.stats.write_residence.record(done.since(arrived));
                let body = NfsReplyBody::WriteVerf(match self.fs.getattr(ino) {
                    Ok(attrs) => StatusReply::Ok(WriteVerfOk {
                        attributes: attributes_to_fattr(self.fs.fsid(), &attrs),
                        committed: StableHow::Unstable,
                        verf: self.boot_verifier,
                    }),
                    Err(e) => StatusReply::Err(fs_error_to_status(e)),
                });
                let reply_at = self.finish_reply(done, nfsd, client, xid, arrived, body, actions);
                self.occupy_nfsd(nfsd, reply_at, actions);
                self.ensure_writeback_scheduled(done, actions);
            }
            Err(e) => {
                let reply_at = self.finish_reply(
                    t1,
                    nfsd,
                    client,
                    xid,
                    arrived,
                    NfsReplyBody::WriteVerf(StatusReply::Err(fs_error_to_status(e))),
                    actions,
                );
                self.occupy_nfsd(nfsd, reply_at, actions);
            }
        }
    }

    /// Drop unstable-acked tracking for blocks a COMMIT just made stable.
    fn commit_clears_unstable(&mut self, ino: InodeNumber, from: u64, to: u64) {
        let Some(blocks) = self.unstable_acked.get_mut(&ino) else {
            return;
        };
        let block_size = self.fs.params().block_size;
        let first = from / block_size;
        let last = to.div_ceil(block_size);
        blocks.retain(|&lbn| lbn < first || lbn >= last);
        if blocks.is_empty() {
            self.unstable_acked.remove(&ino);
        }
    }

    /// Put a write-behind pass on the timer wheel unless one is already
    /// pending or there is nothing dirty to drain.
    fn ensure_writeback_scheduled(&mut self, now: SimTime, actions: &mut Vec<ServerAction>) {
        if !self.config.unified_cache
            || self.writeback_scheduled
            || self.fs.dirty_resident_pages() == 0
        {
            return;
        }
        self.writeback_scheduled = true;
        self.schedule_wakeup(
            now + self.config.writeback_interval,
            WakeReason::Writeback,
            actions,
        );
    }

    /// One background write-behind pass: drain a batch of the oldest dirty
    /// pages through the storage stack (NVRAM first when Presto is
    /// configured) and reschedule while dirty pages remain.
    fn background_writeback(&mut self, now: SimTime, actions: &mut Vec<ServerAction>) {
        self.writeback_scheduled = false;
        if !self.config.unified_cache {
            return;
        }
        let reqs = self.fs.writeback_batch(WRITEBACK_BATCH_PAGES);
        if !reqs.is_empty() {
            self.run_io_plan(now, reqs.iter());
        }
        self.ensure_writeback_scheduled(now, actions);
    }

    /// "Dangerous mode": reply as soon as the data is in volatile memory.
    #[allow(clippy::too_many_arguments)]
    fn dangerous_write(
        &mut self,
        t: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        ino: InodeNumber,
        args: &WriteArgs,
        actions: &mut Vec<ServerAction>,
    ) {
        let t1 = self.cpu.run(t, self.write_copy_cost(args.data.len()));
        let body = match self.fs.write(
            ino,
            args.offset as u64,
            write_source(&args.data),
            WriteFlags::DelayData,
            t1.as_nanos(),
        ) {
            Ok(out) => {
                // Only a dirty-ratio throttle (unified cache armed) ever puts
                // I/O on a delayed write's plan; run it so blocks the cache
                // marked clean really reached the device.
                if !out.io.data.is_empty() {
                    self.run_io_plan(t1, out.io.data.iter());
                }
                self.stats.writes_completed.record(args.data.len() as u64);
                self.stats.write_residence.record(t1.since(arrived));
                // The reply about to go out promises stability the data does
                // not have; remember which blocks the crash oracle must check.
                if !args.data.is_empty() {
                    let block_size = self.fs.params().block_size;
                    let first = args.offset as u64 / block_size;
                    let last = (args.offset as u64 + args.data.len() as u64 - 1) / block_size;
                    let blocks = self.acked_volatile.entry(ino).or_default();
                    for lbn in first..=last {
                        blocks.insert(lbn);
                    }
                }
                NfsReplyBody::Attr(self.attr_reply(&args.file))
            }
            Err(e) => NfsReplyBody::Attr(StatusReply::Err(fs_error_to_status(e))),
        };
        let reply_at = self.finish_reply(t1, nfsd, client, xid, arrived, body, actions);
        self.occupy_nfsd(nfsd, reply_at, actions);
    }

    /// The gathering path (§6.8), also used — with the latency window replaced
    /// by the first write's own data transfer — for the [SIVA93] comparison
    /// policy.
    #[allow(clippy::too_many_arguments)]
    fn gathering_write(
        &mut self,
        t: SimTime,
        nfsd: usize,
        client: ClientId,
        xid: Xid,
        arrived: SimTime,
        ino: InodeNumber,
        args: &WriteArgs,
        actions: &mut Vec<ServerAction>,
    ) {
        // Hand off the data to UFS.  Accelerated filesystems take the data
        // synchronously (it lands in NVRAM); plain disks keep it delayed in
        // the cache so the later flush can cluster it.
        let flags = if self.accelerated {
            WriteFlags::SyncDataOnly
        } else {
            WriteFlags::DelayData
        };
        let lock_at = t.max(self.vnode_free(ino));
        let cost = self.write_copy_cost(args.data.len()) + self.config.costs.gather_bookkeeping;
        let t1 = self.cpu.run(lock_at, cost);
        let outcome = self.fs.write(
            ino,
            args.offset as u64,
            write_source(&args.data),
            flags,
            t1.as_nanos(),
        );
        let out = match outcome {
            Ok(out) => out,
            Err(e) => {
                let reply_at = self.finish_reply(
                    t1,
                    nfsd,
                    client,
                    xid,
                    arrived,
                    NfsReplyBody::Attr(StatusReply::Err(fs_error_to_status(e))),
                    actions,
                );
                self.occupy_nfsd(nfsd, reply_at, actions);
                return;
            }
        };
        // For the accelerated path the data goes to NVRAM right now.
        let mut t2 = if out.io.data.is_empty() {
            t1
        } else {
            self.run_io_plan(t1, out.io.data.iter())
        };
        self.vnode_locks.insert(ino, t2);

        // Queue this write's descriptor.
        let gather = self.gathers.entry(ino).or_default();
        gather.push(PendingWrite {
            client,
            xid,
            offset: args.offset as u64,
            len: args.data.len() as u64,
            arrived,
        });
        self.stats.writes_completed.record(args.data.len() as u64);

        // Can we leave the metadata update to somebody else?
        if self.gathers[&ino].can_join() {
            self.stats.writes_gathered += 1;
            self.trace.record(
                t2,
                TraceKind::ReplyDeferred,
                xid.0 as u64,
                "joined existing gather",
            );
            self.occupy_nfsd(nfsd, t2, actions);
            return;
        }
        if self.config.mbuf_hunter {
            t2 = self.cpu.run(t2, self.config.costs.mbuf_hunt);
            if self.socket_buffer_has_write_for(ino) {
                self.stats.writes_gathered += 1;
                self.trace.record(
                    t2,
                    TraceKind::ReplyDeferred,
                    xid.0 as u64,
                    "mbuf hunter found follow-on write",
                );
                self.occupy_nfsd(nfsd, t2, actions);
                return;
            }
        }

        // Nobody to hand off to: take responsibility.
        self.gathers
            .get_mut(&ino)
            .expect("gather entry exists")
            .responsible = Some((nfsd, GatherPhase::Procrastinating));

        match self.config.policy {
            WritePolicy::FirstWriteLatency => {
                // [SIVA93]: flush this write's own data immediately; its disk
                // time is the window in which other writes may arrive.
                let own_plan = self
                    .fs
                    .sync_data(
                        ino,
                        args.offset as u64,
                        args.offset as u64 + args.data.len() as u64,
                    )
                    .unwrap_or_default();
                let window_end = self.run_io_plan(t2, own_plan.data.iter());
                self.trace.record(
                    t2,
                    TraceKind::Procrastinate,
                    nfsd as u64,
                    "first-write latency window",
                );
                self.nfsds[nfsd].free_at = window_end;
                self.schedule_wakeup(
                    window_end,
                    WakeReason::GatherContinue { nfsd, ino },
                    actions,
                );
            }
            _ => {
                // The paper's procrastination: sleep for a transport-dependent
                // interval hoping company arrives.
                let wake_at = t2 + self.config.procrastination;
                if self.trace.is_enabled() {
                    self.trace.record(
                        t2,
                        TraceKind::Procrastinate,
                        nfsd as u64,
                        format!("{} procrastination", self.config.procrastination),
                    );
                }
                self.nfsds[nfsd].free_at = wake_at;
                self.schedule_wakeup(wake_at, WakeReason::GatherContinue { nfsd, ino }, actions);
            }
        }
    }

    fn socket_buffer_has_write_for(&self, ino: InodeNumber) -> bool {
        // All writes to this inode were routed to its shard, so one shard's
        // queue is the only place a follow-on write can be waiting.
        let shard = self.shard_of_ino(ino);
        self.shards[shard]
            .sockbuf
            .scan()
            .any(|inc| match &inc.call.body {
                NfsCallBody::Write(w) => ino_from_handle(&self.fs, &w.file)
                    .map(|i| i == ino)
                    .unwrap_or(false),
                _ => false,
            })
    }

    /// The responsible nfsd's continuation: its procrastination (or
    /// first-write latency window) ended; decide whether to hand off once more
    /// or to become the metadata writer.
    fn continue_gather(
        &mut self,
        now: SimTime,
        nfsd: usize,
        ino: InodeNumber,
        actions: &mut Vec<ServerAction>,
    ) {
        let Some(gather) = self.gathers.get(&ino) else {
            self.nfsds[nfsd].free_at = now;
            let shard = self.nfsds[nfsd].shard;
            self.dispatch(now, shard, actions);
            return;
        };
        // Did company arrive while we slept?
        if gather.pending_count() > 1 {
            self.stats.procrastination_hits += 1;
        } else {
            self.stats.procrastination_misses += 1;
        }
        // One more chance to hand off: if the socket buffer already holds a
        // follow-on write for this file, the nfsd that will serve it can do
        // the flush and cover our batch too.
        if self.config.mbuf_hunter && self.socket_buffer_has_write_for(ino) {
            if let Some(g) = self.gathers.get_mut(&ino) {
                g.responsible = None;
            }
            self.nfsds[nfsd].free_at = now;
            let shard = self.nfsds[nfsd].shard;
            self.dispatch(now, shard, actions);
            return;
        }
        self.flush_gathered(now, nfsd, ino, actions);
    }

    /// Become the metadata writer: flush gathered data, flush metadata once,
    /// send every pending reply.
    fn flush_gathered(
        &mut self,
        now: SimTime,
        nfsd: usize,
        ino: InodeNumber,
        actions: &mut Vec<ServerAction>,
    ) {
        let Some(gather) = self.gathers.get_mut(&ino) else {
            return;
        };
        let (mut batch, from, to) = gather.take_batch(nfsd);
        if batch.is_empty() {
            gather.finish(nfsd);
            self.nfsds[nfsd].free_at = now;
            let shard = self.nfsds[nfsd].shard;
            self.dispatch(now, shard, actions);
            return;
        }
        // VOP_SYNCDATA with the gathered range as a hint, then VOP_FSYNC for
        // the metadata.  Both are skipped naturally when the data already went
        // to NVRAM (sync_data finds nothing dirty).
        let t1 = self.cpu.run(now, self.config.costs.ufs_trip);
        let data_plan = self.fs.sync_data(ino, from, to).unwrap_or_default();
        let meta_plan = self
            .fs
            .fsync(ino, FsyncFlags::MetadataOnly)
            .unwrap_or_default();
        let mut done = self.run_io_plan(t1, data_plan.data.iter());
        if !meta_plan.metadata.is_empty() {
            done = self.run_io_plan(done, meta_plan.metadata.iter());
            self.trace.record(
                done,
                TraceKind::MetadataToDisk,
                ino,
                "gathered metadata flush",
            );
        }
        self.stats.record_batch(batch.len());

        // Send the pending replies.  FIFO is arrival order (the order they
        // were pushed); LIFO reverses it.
        if self.config.reply_order == ReplyOrder::Lifo {
            batch.reverse();
        }
        let fattr = self
            .fs
            .getattr(ino)
            .map(|attrs| attributes_to_fattr(self.fs.fsid(), &attrs));
        for w in batch {
            let body = match &fattr {
                Ok(f) => NfsReplyBody::Attr(StatusReply::Ok(*f)),
                Err(e) => NfsReplyBody::Attr(StatusReply::Err(fs_error_to_status(*e))),
            };
            self.stats.write_residence.record(done.since(w.arrived));
            done = self.finish_reply(done, nfsd, w.client, w.xid, w.arrived, body, actions);
        }
        if let Some(g) = self.gathers.get_mut(&ino) {
            g.finish(nfsd);
        }
        self.occupy_nfsd(nfsd, done, actions);
    }

    /// Force any still-deferred state out to stable storage (used at the end
    /// of an experiment and by tests).  Returns the time everything is stable.
    pub fn quiesce(&mut self, now: SimTime, actions: &mut Vec<ServerAction>) -> SimTime {
        let inos: Vec<InodeNumber> = self.gathers.keys().copied().collect();
        let mut done = now;
        for ino in inos {
            if self
                .gathers
                .get(&ino)
                .map(|g| g.pending_count() > 0)
                .unwrap_or(false)
            {
                // Flush on the owning shard's first nfsd (shard 0's nfsd 0 in
                // the unsharded configuration, exactly as before).
                let shard = self.shard_of_ino(ino);
                let nfsd = self
                    .nfsds
                    .iter()
                    .position(|d| d.shard == shard)
                    .expect("every shard has an nfsd");
                self.flush_gathered(now, nfsd, ino, actions);
                done = done.max(self.nfsds[nfsd].free_at);
            }
        }
        // Drain whatever the unified cache still holds dirty (unstable data
        // no COMMIT covered); with the cache disarmed the batch is empty.
        if self.config.unified_cache {
            let reqs = self.fs.writeback_batch(u64::MAX);
            if !reqs.is_empty() {
                done = done.max(self.run_io_plan(now, reqs.iter()));
            }
        }
        done.max(self.device.free_at())
    }

    /// The current boot instance's write/commit verifier (tests and clients
    /// obtain the live value from replies; this accessor is for assertions).
    pub fn boot_verifier(&self) -> u64 {
        self.boot_verifier
    }

    // ------------------------------------------------------------------
    // Fault injection: crash/reboot, battery failure, disk degradation
    // ------------------------------------------------------------------

    /// The server is unreachable until this time (always in the past unless
    /// a fault plan crashed it).
    pub fn recovering_until(&self) -> SimTime {
        self.recovering_until
    }

    /// Bytes the storage stack has acknowledged as stable but not yet put on
    /// the final medium (a battery-backed accelerator's contents; zero for a
    /// plain disk).
    pub fn pending_stable_bytes(&self) -> u64 {
        self.device.pending_stable_bytes()
    }

    /// Crash the server at `now` and model its reboot.
    ///
    /// Everything volatile dies: the shards' socket buffers and duplicate
    /// request caches, the per-file gather table, vnode locks, pending timer
    /// continuations and the nfsds' in-flight work.  Before discarding the
    /// buffer cache, the recovery oracle walks every block a reply promised
    /// was stable while it was still volatile (dangerous mode's debt) and
    /// counts the ones that die with the crash into
    /// [`ServerStats::lost_acked_bytes`].  Battery-backed NVRAM survives and
    /// is replayed to disk ([`BlockDevice::crash_recover`]) during the boot
    /// window; the server accepts no traffic until the later of
    /// `now + reboot_time` and the replay's completion, which is returned.
    pub fn crash(&mut self, now: SimTime) -> SimTime {
        self.stats.crashes += 1;
        // --- Recovery oracle bookkeeping -------------------------------
        let block_size = self.fs.params().block_size;
        let mut lost = 0u64;
        for (&ino, lbns) in self.acked_volatile.iter() {
            for &lbn in lbns {
                if self.fs.block_is_dirty(ino, lbn) {
                    lost += block_size;
                }
            }
        }
        self.stats.lost_acked_bytes += lost;
        self.acked_volatile.clear();
        // Unstable-acked data dying with the crash is loss the protocol
        // *permits*: counted separately, and the verifier change below is
        // what tells clients to re-send it.
        let mut lost_unstable = 0u64;
        for (&ino, lbns) in self.unstable_acked.iter() {
            for &lbn in lbns {
                if self.fs.block_is_dirty(ino, lbn) {
                    lost_unstable += block_size;
                }
            }
        }
        self.stats.lost_unstable_bytes += lost_unstable;
        self.unstable_acked.clear();
        self.boot_verifier = BOOT_VERIFIER_SEED.wrapping_add(self.stats.crashes);
        self.writeback_scheduled = false;
        // --- Discard volatile state ------------------------------------
        self.stats.discarded_dirty_bytes += self.fs.crash_discard_volatile();
        self.gathers.clear();
        self.vnode_locks.clear();
        // Pending wake-ups (procrastination timers, nfsd-free dispatches)
        // become stale: the orchestrator will still deliver them, but with
        // their reasons forgotten they are no-ops.
        self.wake_reasons.clear();
        let shard_count = self.shards.len();
        let dup_entries = self.config.dupcache_entries.max(1).div_ceil(shard_count);
        let sockbuf_bytes = (self.config.socket_buffer_bytes / shard_count).max(9 * 1024);
        for shard in self.shards.iter_mut() {
            // The eviction counter is cumulative across the run; bank it
            // before the partition dies with the crash.
            self.pre_crash_evicted_in_progress += shard.dupcache.evicted_in_progress();
            shard.sockbuf = SocketBuffer::with_capacity(sockbuf_bytes);
            shard.dupcache = DuplicateRequestCache::new(dup_entries);
        }
        // --- Boot + NVRAM recovery replay ------------------------------
        let replay_done = self.device.crash_recover(now);
        let recovered = (now + self.config.reboot_time).max(replay_done);
        debug_assert_eq!(
            self.device.pending_stable_bytes(),
            0,
            "recovery replay left acknowledged data off the medium"
        );
        for nfsd in self.nfsds.iter_mut() {
            nfsd.free_at = recovered;
        }
        self.recovering_until = recovered;
        // Client state is volatile too: held locks move into the reclaimable
        // image, records die, and the grace window opens once the server is
        // back.  A no-op on the empty table of a disarmed state layer.
        self.state.crash(recovered);
        self.trace
            .record(now, TraceKind::RequestDropped, 0, "server crash");
        recovered
    }

    /// Expire every lease older than `now` (see [`ClientStateTable::sweep`]).
    /// Drivers call this at end of run so leases abandoned mid-run (e.g. by
    /// clients that gave up retransmitting) are reclaimed deterministically.
    pub fn expire_leases(&mut self, now: SimTime) {
        self.state.sweep(now);
    }

    /// Counters of the client-state layer.
    pub fn state_stats(&self) -> &StateStats {
        self.state.stats()
    }

    /// Bytes of memory the client-state table currently pins.
    pub fn state_table_bytes(&self) -> u64 {
        self.state.table_bytes()
    }

    /// Registered clients with live leases.
    pub fn active_lease_clients(&self) -> usize {
        self.state.active_clients()
    }

    /// Byte-range locks currently held across all clients.
    pub fn held_locks(&self) -> usize {
        self.state.held_locks()
    }

    /// Whether the post-crash grace window is open at `now`.
    pub fn in_grace(&self, now: SimTime) -> bool {
        self.state.in_grace(now)
    }

    /// Fail (`healthy = false`) or repair (`healthy = true`) the NVRAM
    /// battery.  On failure the accelerator drains what it holds and degrades
    /// to write-through until repaired; a plain disk ignores both.  Returns
    /// the time the transition completes.
    pub fn set_battery(&mut self, healthy: bool, now: SimTime) -> SimTime {
        if !healthy {
            self.stats.battery_failures += 1;
        }
        self.battery_ok = healthy;
        self.device.set_battery(healthy, now)
    }

    /// Degrade the disk subsystem between `from` and `from + duration`:
    /// every transfer submitted inside the window fails `retries` times,
    /// each failed attempt stalling the request by `stall`, before the final
    /// attempt succeeds.  A second call replaces the previous window.
    pub fn inject_disk_fault(
        &mut self,
        from: SimTime,
        duration: Duration,
        stall: Duration,
        retries: u32,
    ) {
        self.disk_fault = Some(DiskFault {
            from,
            until: from + duration,
            stall,
            retries,
        });
    }

    /// The bounded-retry delay an injected disk fault adds to a transfer
    /// submitted at `t` (zero outside any window).
    fn disk_fault_delay(&mut self, t: SimTime) -> SimTime {
        match self.disk_fault {
            Some(f) if f.from <= t && t < f.until && f.retries > 0 => {
                self.stats.disk_retries += f.retries as u64;
                t + f.stall * f.retries as u64
            }
            _ => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_nfsproto::{NfsCall, WriteArgs};

    fn write_call(
        server: &NfsServer,
        ino: InodeNumber,
        xid: u32,
        offset: u64,
        len: usize,
    ) -> NfsCall {
        let fh = server.handle_for_ino(ino).unwrap();
        NfsCall::new(
            Xid(xid),
            NfsCallBody::Write(WriteArgs::new(fh, offset as u32, vec![7u8; len])),
        )
    }

    fn datagram(call: NfsCall) -> ServerInput {
        let wire = call.wire_size();
        ServerInput::Datagram {
            client: 1,
            call,
            wire_size: wire,
            fragments: 6,
        }
    }

    /// Drive the server until it has no outstanding wake-ups, collecting
    /// replies.  Inputs are injected at the given times.
    fn run_to_completion(
        server: &mut NfsServer,
        mut inputs: Vec<(SimTime, ServerInput)>,
    ) -> Vec<(SimTime, NfsReply)> {
        let mut queue = wg_simcore::EventQueue::new();
        inputs.sort_by_key(|(t, _)| *t);
        for (t, input) in inputs {
            queue.schedule_at(t, input);
        }
        let mut replies = Vec::new();
        while let Some((t, input)) = queue.pop() {
            for action in server.handle(t, input) {
                match action {
                    ServerAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ServerInput::Wakeup { token });
                    }
                    ServerAction::Reply { at, reply, .. } => replies.push((at, reply)),
                }
            }
        }
        replies
    }

    fn make_server(policy: WritePolicy) -> (NfsServer, InodeNumber) {
        let mut cfg = ServerConfig::standard();
        cfg.policy = policy;
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "target", 0o644, 0).unwrap();
        (server, ino)
    }

    #[test]
    fn standard_write_replies_after_data_and_metadata_are_stable() {
        let (mut server, ino) = make_server(WritePolicy::Standard);
        let call = write_call(&server, ino, 1, 0, 8192);
        let replies = run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        assert_eq!(replies.len(), 1);
        let (at, reply) = &replies[0];
        assert!(reply.body.is_ok());
        // Data + inode seek on an RZ26: the reply cannot be earlier than ~15 ms.
        assert!(*at > SimTime::from_millis(10), "reply at {at:?}");
        // Nothing dirty remains: the stable-storage contract held.
        assert_eq!(server.uncommitted_bytes(), 0);
        assert_eq!(server.device_stats().transfers.events(), 2);
    }

    #[test]
    fn gathering_batches_writes_and_reduces_disk_transactions() {
        let (mut server, ino) = make_server(WritePolicy::Gathering);
        // Eight 8 KB writes arriving 1 ms apart (well within the 8 ms
        // procrastination window).
        let inputs: Vec<_> = (0..8u64)
            .map(|i| {
                let call = write_call(&server, ino, 100 + i as u32, i * 8192, 8192);
                (SimTime::from_millis(i), datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        assert_eq!(replies.len(), 8);
        assert!(replies.iter().all(|(_, r)| r.body.is_ok()));
        // All replies carry the same mtime (single metadata update).
        let mtimes: Vec<_> = replies
            .iter()
            .map(|(_, r)| match &r.body {
                NfsReplyBody::Attr(StatusReply::Ok(f)) => f.mtime,
                other => panic!("unexpected body {other:?}"),
            })
            .collect();
        assert!(mtimes.windows(2).all(|w| w[0] == w[1]));
        // The whole burst cost far fewer disk transactions than 8 standard
        // writes (which would be ~16): one clustered data write, an inode and
        // an indirect block at most.
        let transfers = server.device_stats().transfers.events();
        assert!(transfers <= 4, "got {transfers} transfers");
        assert_eq!(server.stats().writes_gathered, 7);
        assert!(server.stats().mean_batch_size() >= 7.9);
        assert_eq!(server.uncommitted_bytes(), 0);
    }

    #[test]
    fn gathering_replies_are_fifo_by_default() {
        let (mut server, ino) = make_server(WritePolicy::Gathering);
        let inputs: Vec<_> = (0..5u64)
            .map(|i| {
                let call = write_call(&server, ino, 200 + i as u32, i * 8192, 8192);
                (SimTime::from_millis(i), datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        let xids: Vec<u32> = replies.iter().map(|(_, r)| r.xid.0).collect();
        assert_eq!(xids, vec![200, 201, 202, 203, 204]);
        // And reply times never decrease.
        assert!(replies.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn lifo_order_reverses_the_batch() {
        let mut cfg = ServerConfig::gathering();
        cfg.reply_order = ReplyOrder::Lifo;
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
        let inputs: Vec<_> = (0..4u64)
            .map(|i| {
                let call = write_call(&server, ino, 300 + i as u32, i * 8192, 8192);
                (SimTime::from_millis(i), datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        let xids: Vec<u32> = replies.iter().map(|(_, r)| r.xid.0).collect();
        assert_eq!(xids, vec![303, 302, 301, 300]);
    }

    #[test]
    fn lone_write_pays_the_procrastination_penalty_but_still_commits() {
        let (mut server, ino) = make_server(WritePolicy::Gathering);
        let call = write_call(&server, ino, 1, 0, 8192);
        let replies = run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        assert_eq!(replies.len(), 1);
        // The reply waited for the 8 ms procrastination plus the flush.
        assert!(replies[0].0 > SimTime::from_millis(8 + 10));
        assert_eq!(server.stats().procrastination_misses, 1);
        assert_eq!(server.stats().procrastination_hits, 0);
        assert_eq!(server.uncommitted_bytes(), 0);
    }

    #[test]
    fn standard_writes_to_same_file_serialise_on_the_vnode_lock() {
        let (mut server, ino) = make_server(WritePolicy::Standard);
        let inputs: Vec<_> = (0..4u64)
            .map(|i| {
                let call = write_call(&server, ino, 400 + i as u32, i * 8192, 8192);
                (SimTime::ZERO, datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        assert_eq!(replies.len(), 4);
        let last = replies.iter().map(|(t, _)| *t).max().unwrap();
        // Four writes, each needing two disk transactions of ~10-17 ms,
        // serialised: the last reply lands far beyond a single write's time.
        assert!(last > SimTime::from_millis(60), "last reply {last:?}");
        assert_eq!(server.device_stats().transfers.events(), 8);
    }

    #[test]
    fn dangerous_mode_replies_fast_but_leaves_uncommitted_data() {
        let (mut server, ino) = make_server(WritePolicy::DangerousAsync);
        let call = write_call(&server, ino, 1, 0, 8192);
        let replies = run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].0 < SimTime::from_millis(2));
        // The crash-recovery contract is violated: dirty bytes linger with no
        // disk transactions issued.
        assert_eq!(server.uncommitted_bytes(), 8192);
        assert_eq!(server.device_stats().transfers.events(), 0);
    }

    #[test]
    fn first_write_latency_policy_gathers_followers() {
        let (mut server, ino) = make_server(WritePolicy::FirstWriteLatency);
        let inputs: Vec<_> = (0..4u64)
            .map(|i| {
                let call = write_call(&server, ino, 500 + i as u32, i * 8192, 8192);
                (SimTime::from_millis(i), datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        assert_eq!(replies.len(), 4);
        // The first write went to disk alone (8 KB), later arrivals were
        // gathered during that window.
        assert!(server.stats().writes_gathered >= 2);
        assert_eq!(server.uncommitted_bytes(), 0);
    }

    #[test]
    fn duplicate_write_is_not_reexecuted() {
        let (mut server, ino) = make_server(WritePolicy::Gathering);
        let call = write_call(&server, ino, 42, 0, 8192);
        let dup = call.clone();
        let replies = run_to_completion(
            &mut server,
            vec![
                (SimTime::ZERO, datagram(call)),
                // Retransmission arrives while the original is still gathered.
                (SimTime::from_millis(2), datagram(dup.clone())),
                // And again long after the reply went out.
                (SimTime::from_millis(200), datagram(dup)),
            ],
        );
        // Original reply + replay of the cached reply; the in-progress
        // duplicate was dropped silently.
        assert_eq!(replies.len(), 2);
        assert_eq!(server.stats().duplicate_requests, 2);
        // The file contains the data exactly once.
        assert_eq!(server.fs().dirty_bytes(), 0);
        let mut fs = server.fs().clone();
        let read = fs.read(ino, 0, 8192).unwrap();
        assert_eq!(read.to_vec(), vec![7u8; 8192]);
    }

    #[test]
    fn pending_gathered_write_survives_dupcache_overflow() {
        // The §6.9 regression: a gathered WRITE's reply is deferred; while the
        // responsible nfsd procrastinates, unrelated traffic overflows a tiny
        // duplicate request cache.  The write's InProgress entry must survive
        // the churn so its retransmission is dropped, not re-executed.
        let mut cfg = ServerConfig::gathering();
        cfg.dupcache_entries = 4;
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "target", 0o644, 0).unwrap();
        let fh = server.handle_for_ino(ino).unwrap();
        let write = write_call(&server, ino, 42, 0, 8192);
        let mut inputs = vec![(SimTime::ZERO, datagram(write.clone()))];
        // Ten lightweight requests churn through the 4-entry cache well inside
        // the 8 ms procrastination window.
        for i in 0..10u64 {
            let getattr = NfsCall::new(
                Xid(1000 + i as u32),
                NfsCallBody::Getattr(wg_nfsproto::GetattrArgs { file: fh }),
            );
            inputs.push((SimTime::from_micros(1000 + i * 100), datagram(getattr)));
        }
        // The retransmission arrives while the original is still gathered.
        inputs.push((SimTime::from_millis(5), datagram(write)));
        let replies = run_to_completion(&mut server, inputs);
        // One reply per getattr, exactly one for the write: the
        // retransmission was recognised as in progress and dropped.
        assert_eq!(replies.len(), 11);
        assert_eq!(
            replies.iter().filter(|(_, r)| r.xid == Xid(42)).count(),
            1,
            "the retransmitted gathered write was re-executed"
        );
        assert_eq!(server.stats().duplicate_requests, 1);
        assert_eq!(server.dupcache_evicted_in_progress(), 0);
        assert_eq!(server.uncommitted_bytes(), 0);
    }

    #[test]
    fn statfs_block_counts_saturate_instead_of_wrapping() {
        // ~35 TB of configured capacity: the true block count exceeds u32 and
        // used to wrap to a tiny number through the `as u32` casts.
        let mut cfg = ServerConfig::standard();
        cfg.data_capacity = (u32::MAX as u64 + 1_000) * 8192;
        let mut server = NfsServer::new(cfg);
        let root_fh = server.root_handle();
        let call = NfsCall::new(
            Xid(1),
            NfsCallBody::Statfs(wg_nfsproto::GetattrArgs { file: root_fh }),
        );
        let replies = run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        assert_eq!(replies.len(), 1);
        match &replies[0].1.body {
            NfsReplyBody::Statfs(StatusReply::Ok(s)) => {
                assert_eq!(s.blocks, u32::MAX);
                assert_eq!(s.bfree, u32::MAX);
                assert_eq!(s.bavail, u32::MAX);
            }
            other => panic!("unexpected statfs reply {other:?}"),
        }
    }

    #[test]
    fn sharded_server_serves_independent_files_and_keeps_integrity() {
        let mut cfg = ServerConfig::gathering().with_shards(4).with_cores(2);
        cfg.nfsds = 8;
        let mut server = NfsServer::new(cfg);
        assert_eq!(server.shard_count(), 4);
        let root = server.fs().root();
        // Eight files spread across the shards, five writes each.
        let inos: Vec<InodeNumber> = (0..8)
            .map(|i| {
                server
                    .fs_mut()
                    .create(root, &format!("f{i}"), 0o644, 0)
                    .unwrap()
            })
            .collect();
        let mut inputs = Vec::new();
        let mut xid = 100u32;
        for (fi, &ino) in inos.iter().enumerate() {
            for w in 0..5u64 {
                let call = write_call(&server, ino, xid, w * 8192, 8192);
                xid += 1;
                inputs.push((SimTime::from_millis(fi as u64 + w), datagram(call)));
            }
        }
        let replies = run_to_completion(&mut server, inputs);
        assert_eq!(replies.len(), 40);
        assert!(replies.iter().all(|(_, r)| r.body.is_ok()));
        assert_eq!(server.uncommitted_bytes(), 0);
        assert_eq!(server.dupcache_evicted_in_progress(), 0);
        // Every file holds its five blocks of fill data.
        let mut fs = server.fs().clone();
        for &ino in &inos {
            assert_eq!(fs.getattr(ino).unwrap().size, 5 * 8192);
            let read = fs.read(ino, 0, 8192).unwrap();
            assert!(read.to_vec().iter().all(|&b| b == 7));
        }
        // Gathering still worked per shard.
        assert!(server.stats().writes_gathered > 0);
    }

    #[test]
    fn sharded_duplicate_write_is_not_reexecuted() {
        // The duplicate-recognition contract holds when the dupcache is
        // partitioned: original and retransmission route to the same shard.
        let mut cfg = ServerConfig::gathering().with_shards(3);
        cfg.nfsds = 6;
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
        let call = write_call(&server, ino, 7, 0, 8192);
        let dup = call.clone();
        let replies = run_to_completion(
            &mut server,
            vec![
                (SimTime::ZERO, datagram(call)),
                (SimTime::from_millis(2), datagram(dup.clone())),
                (SimTime::from_millis(200), datagram(dup)),
            ],
        );
        assert_eq!(replies.len(), 2);
        assert_eq!(server.stats().duplicate_requests, 2);
        let mut fs = server.fs().clone();
        assert_eq!(fs.read(ino, 0, 8192).unwrap().to_vec(), vec![7u8; 8192]);
    }

    #[test]
    fn overlapped_striped_flush_is_faster_and_writes_identical_bytes() {
        // 24 writes gathered into one batch whose flush spans three stripe
        // units: the pipelined plan drives all three spindles concurrently,
        // the serial plan chains them, and both land exactly the same bytes.
        let run = |overlap: bool| {
            let cfg = ServerConfig::gathering()
                .with_spindles(3)
                .with_io_overlap(overlap);
            let mut server = NfsServer::new(cfg);
            let root = server.fs().root();
            let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
            let inputs: Vec<_> = (0..24u64)
                .map(|i| {
                    let call = write_call(&server, ino, 900 + i as u32, i * 8192, 8192);
                    (SimTime::from_micros(i * 200), datagram(call))
                })
                .collect();
            let replies = run_to_completion(&mut server, inputs);
            (server, replies)
        };
        let (serial_srv, serial_replies) = run(false);
        let (ov_srv, ov_replies) = run(true);
        assert_eq!(serial_replies.len(), 24);
        assert_eq!(ov_replies.len(), 24);
        assert!(ov_replies.iter().all(|(_, r)| r.body.is_ok()));
        // Identical physical work: same bytes and transfer count on disk.
        let serial_stats = serial_srv.device_stats();
        let ov_stats = ov_srv.device_stats();
        assert_eq!(serial_stats.transfers.bytes(), ov_stats.transfers.bytes());
        assert_eq!(serial_stats.transfers.events(), ov_stats.transfers.events());
        // But the overlapped batch finishes strictly earlier.
        let last = |replies: &[(SimTime, NfsReply)]| replies.iter().map(|(t, _)| *t).max().unwrap();
        assert!(
            last(&ov_replies) < last(&serial_replies),
            "overlap {} vs serial {}",
            last(&ov_replies),
            last(&serial_replies)
        );
        assert_eq!(ov_srv.uncommitted_bytes(), 0);
        // The per-spindle breakdown shows genuine overlap: more than one
        // member did work.
        let spindles = ov_srv.spindle_stats();
        assert_eq!(spindles.len(), 3);
        assert!(
            spindles
                .iter()
                .filter(|s| s.stats.transfers.events() > 0)
                .count()
                >= 2,
            "flush never left the first spindle"
        );
    }

    #[test]
    fn overlap_on_a_single_disk_changes_nothing_about_the_data() {
        let run = |overlap: bool| {
            let cfg = ServerConfig::standard().with_io_overlap(overlap);
            let mut server = NfsServer::new(cfg);
            let root = server.fs().root();
            let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
            let inputs: Vec<_> = (0..4u64)
                .map(|i| {
                    let call = write_call(&server, ino, 950 + i as u32, i * 8192, 8192);
                    (SimTime::from_millis(i), datagram(call))
                })
                .collect();
            let replies = run_to_completion(&mut server, inputs);
            (server, replies)
        };
        let (serial_srv, serial_replies) = run(false);
        let (ov_srv, ov_replies) = run(true);
        assert_eq!(serial_replies.len(), ov_replies.len());
        assert_eq!(
            serial_srv.device_stats().transfers.bytes(),
            ov_srv.device_stats().transfers.bytes()
        );
        assert_eq!(ov_srv.uncommitted_bytes(), 0);
        // On one spindle the pipeline can only remove CPU-gap idle time, so
        // completions never get later.
        let last = |replies: &[(SimTime, NfsReply)]| replies.iter().map(|(t, _)| *t).max().unwrap();
        assert!(last(&ov_replies) <= last(&serial_replies));
    }

    #[test]
    fn stale_handle_write_gets_a_stale_error() {
        let (mut server, ino) = make_server(WritePolicy::Gathering);
        let call = write_call(&server, ino, 9, 0, 1024);
        let root = server.fs().root();
        server.fs_mut().remove(root, "target", 5).unwrap();
        let replies = run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].1.body.status(), NfsStatus::Stale);
    }

    #[test]
    fn non_write_operations_are_served() {
        let (mut server, ino) = make_server(WritePolicy::Gathering);
        let fh = server.handle_for_ino(ino).unwrap();
        let root_fh = server.root_handle();
        let calls = vec![
            NfsCall::new(
                Xid(1),
                NfsCallBody::Getattr(wg_nfsproto::GetattrArgs { file: fh }),
            ),
            NfsCall::new(
                Xid(2),
                NfsCallBody::Lookup(wg_nfsproto::DirOpArgs {
                    dir: root_fh,
                    name: "target".into(),
                }),
            ),
            NfsCall::new(
                Xid(3),
                NfsCallBody::Create(wg_nfsproto::CreateArgs {
                    where_: wg_nfsproto::DirOpArgs {
                        dir: root_fh,
                        name: "new-file".into(),
                    },
                    attributes: wg_nfsproto::Sattr::with_mode(0o600),
                }),
            ),
            NfsCall::new(
                Xid(4),
                NfsCallBody::Read(wg_nfsproto::ReadArgs {
                    file: fh,
                    offset: 0,
                    count: 4096,
                    totalcount: 0,
                }),
            ),
            NfsCall::new(
                Xid(5),
                NfsCallBody::Readdir(wg_nfsproto::ReaddirArgs {
                    dir: root_fh,
                    cookie: 0,
                    count: 4096,
                }),
            ),
            NfsCall::new(
                Xid(6),
                NfsCallBody::Statfs(wg_nfsproto::GetattrArgs { file: root_fh }),
            ),
            NfsCall::new(
                Xid(7),
                NfsCallBody::Remove(wg_nfsproto::DirOpArgs {
                    dir: root_fh,
                    name: "new-file".into(),
                }),
            ),
            NfsCall::new(Xid(8), NfsCallBody::Null),
        ];
        let inputs: Vec<_> = calls
            .into_iter()
            .enumerate()
            .map(|(i, c)| (SimTime::from_millis(i as u64 * 30), datagram(c)))
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        assert_eq!(replies.len(), 8);
        assert!(replies.iter().all(|(_, r)| r.body.is_ok()), "{replies:#?}");
        assert_eq!(server.stats().other_ops_completed.events(), 8);
    }

    #[test]
    fn socket_buffer_overflow_drops_requests() {
        let mut cfg = ServerConfig::gathering();
        cfg.socket_buffer_bytes = 20_000; // room for ~2 8 KB writes
        cfg.nfsds = 1;
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
        // Ten writes all arriving at t=0: the single nfsd is busy with the
        // first while the rest overflow the tiny socket buffer.
        let inputs: Vec<_> = (0..10u64)
            .map(|i| {
                let call = write_call(&server, ino, 600 + i as u32, i * 8192, 8192);
                (SimTime::ZERO, datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        assert!(server.socket_drops() > 0);
        assert!(replies.len() < 10);
    }

    #[test]
    fn quiesce_flushes_orphaned_batches() {
        let (mut server, ino) = make_server(WritePolicy::DangerousAsync);
        let call = write_call(&server, ino, 1, 0, 8192);
        run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        assert!(server.uncommitted_bytes() > 0);
        // Dangerous mode never flushes on its own; quiesce only drains the
        // gathering queues, so dirty bytes remain: exactly the data a crash
        // would lose.
        let mut actions = Vec::new();
        server.quiesce(SimTime::from_secs(1), &mut actions);
        assert!(server.uncommitted_bytes() > 0);
    }

    #[test]
    fn presto_gathering_cuts_metadata_work() {
        let mut cfg = ServerConfig::gathering().with_presto(true);
        cfg.procrastination = Duration::from_millis(5);
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "p", 0o644, 0).unwrap();
        let inputs: Vec<_> = (0..8u64)
            .map(|i| {
                let call = write_call(&server, ino, 700 + i as u32, i * 8192, 8192);
                (SimTime::from_millis(i / 2), datagram(call))
            })
            .collect();
        let replies = run_to_completion(&mut server, inputs);
        assert_eq!(replies.len(), 8);
        // With NVRAM the data writes complete quickly and the metadata was
        // amortised across the batch.
        assert!(server.stats().metadata_flushes <= 2);
        assert_eq!(server.uncommitted_bytes(), 0);
    }

    // --- the unstable-write / COMMIT path -----------------------------

    fn make_unstable_server(presto: bool) -> (NfsServer, InodeNumber) {
        let cfg = ServerConfig::standard()
            .with_presto(presto)
            .with_unified_cache(1024)
            .with_stability(crate::config::StabilityMode::Unstable);
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "target", 0o644, 0).unwrap();
        (server, ino)
    }

    fn unstable_write_call(
        server: &NfsServer,
        ino: InodeNumber,
        xid: u32,
        offset: u64,
        len: usize,
    ) -> NfsCall {
        let fh = server.handle_for_ino(ino).unwrap();
        NfsCall::new(
            Xid(xid),
            NfsCallBody::Write(
                WriteArgs::new(fh, offset as u32, vec![7u8; len])
                    .with_stability(StableHow::Unstable),
            ),
        )
    }

    fn commit_call(server: &NfsServer, ino: InodeNumber, xid: u32) -> NfsCall {
        let fh = server.handle_for_ino(ino).unwrap();
        NfsCall::new(
            Xid(xid),
            NfsCallBody::Commit(wg_nfsproto::CommitArgs {
                file: fh,
                offset: 0,
                count: 0,
            }),
        )
    }

    #[test]
    fn unstable_write_replies_fast_and_commit_makes_it_stable() {
        let (mut server, ino) = make_unstable_server(false);
        let call = unstable_write_call(&server, ino, 1, 0, 8192);
        let replies = run_to_completion(&mut server, vec![(SimTime::ZERO, datagram(call))]);
        // The write reply is the v3-style verifier reply, well before any
        // disk I/O could have finished, and marked UNSTABLE.
        let (at, reply) = &replies[0];
        match &reply.body {
            NfsReplyBody::WriteVerf(StatusReply::Ok(ok)) => {
                assert_eq!(ok.committed, StableHow::Unstable);
                assert_eq!(ok.verf, server.boot_verifier());
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert!(*at < SimTime::from_millis(5), "reply at {at:?}");
        assert_eq!(server.stats().unstable_writes, 1);
        // run_to_completion drives the write-behind wake-ups too, so by the
        // time the queue drains the data is on disk even without a COMMIT.
        assert_eq!(server.uncommitted_bytes(), 0);
        // A COMMIT over stable data is cheap and echoes the same verifier.
        let commit = commit_call(&server, ino, 2);
        let replies =
            run_to_completion(&mut server, vec![(SimTime::from_secs(1), datagram(commit))]);
        match &replies[0].1.body {
            NfsReplyBody::Commit(StatusReply::Ok(ok)) => {
                assert_eq!(ok.verf, server.boot_verifier());
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(server.stats().commits, 1);
        assert_eq!(server.stats().lost_unstable_bytes, 0);
    }

    #[test]
    fn crash_counts_uncommitted_unstable_data_and_changes_the_verifier() {
        let (mut server, ino) = make_unstable_server(false);
        // Hand the datagrams straight to the server without driving the
        // wake-up queue, so the write-behind pass never runs and the data is
        // still volatile when the crash lands.
        for i in 0..4u64 {
            let call = unstable_write_call(&server, ino, 10 + i as u32, i * 8192, 8192);
            server.handle(SimTime::from_micros(i * 10), datagram(call));
        }
        assert!(server.uncommitted_bytes() > 0);
        let verf_before = server.boot_verifier();
        server.crash(SimTime::from_millis(1));
        assert_ne!(server.boot_verifier(), verf_before);
        // All four blocks died acknowledged-but-uncommitted: permitted loss,
        // counted separately from the dangerous-mode oracle.
        assert_eq!(server.stats().lost_unstable_bytes, 4 * 8192);
        assert_eq!(server.stats().lost_acked_bytes, 0);
    }

    #[test]
    fn committed_data_survives_a_crash_uncounted() {
        let (mut server, ino) = make_unstable_server(false);
        let write = unstable_write_call(&server, ino, 1, 0, 8192);
        let commit = commit_call(&server, ino, 2);
        run_to_completion(
            &mut server,
            vec![
                (SimTime::ZERO, datagram(write)),
                (SimTime::from_millis(1), datagram(commit)),
            ],
        );
        server.crash(SimTime::from_secs(1));
        assert_eq!(server.stats().lost_unstable_bytes, 0);
        assert_eq!(server.stats().lost_acked_bytes, 0);
    }

    #[test]
    fn dead_battery_promotes_unstable_writes_to_file_sync() {
        let (mut server, ino) = make_unstable_server(true);
        server.set_battery(false, SimTime::ZERO);
        let call = unstable_write_call(&server, ino, 1, 0, 8192);
        let replies =
            run_to_completion(&mut server, vec![(SimTime::from_millis(1), datagram(call))]);
        // The reply still speaks v3 (the client asked UNSTABLE) but reports
        // FILE_SYNC: the data went synchronously through the write-through
        // board, so no COMMIT is owed and a crash loses nothing.
        match &replies[0].1.body {
            NfsReplyBody::WriteVerf(StatusReply::Ok(ok)) => {
                assert_eq!(ok.committed, StableHow::FileSync);
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(server.stats().forced_file_sync, 1);
        assert_eq!(server.stats().unstable_writes, 0);
        assert_eq!(server.uncommitted_bytes(), 0);
        server.crash(SimTime::from_secs(1));
        assert_eq!(server.stats().lost_unstable_bytes, 0);
        assert_eq!(server.stats().lost_acked_bytes, 0);
        // A repaired battery restores unstable service.
        let recovered = server.recovering_until();
        server.set_battery(true, recovered);
        let call = unstable_write_call(&server, ino, 2, 0, 8192);
        run_to_completion(&mut server, vec![(recovered, datagram(call))]);
        assert_eq!(server.stats().unstable_writes, 1);
    }

    #[test]
    fn throttled_unstable_writer_pays_forced_writeback_inline() {
        // A 8-page cache with a 0.25 dirty ratio: the third dirty page
        // forces the writer to drain the oldest dirty page itself.
        let cfg = ServerConfig::standard()
            .with_unified_cache(8)
            .with_dirty_ratio(0.25)
            .with_stability(crate::config::StabilityMode::Unstable)
            // Keep write-behind out of the picture for the whole burst.
            .with_writeback_interval(Duration::from_secs(100));
        let mut server = NfsServer::new(cfg);
        let root = server.fs().root();
        let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
        for i in 0..6u64 {
            let call = unstable_write_call(&server, ino, 20 + i as u32, i * 8192, 8192);
            server.handle(SimTime::from_micros(i), datagram(call));
        }
        assert!(server.fs().counters().throttle_stalls > 0);
        assert!(server.fs().counters().writeback_blocks > 0);
        // Throttled pages reached the device, not the floor.
        assert!(server.device_stats().transfers.events() > 0);
    }

    #[test]
    fn quiesce_drains_the_unified_cache() {
        let (mut server, ino) = make_unstable_server(false);
        let call = unstable_write_call(&server, ino, 1, 0, 8192);
        server.handle(SimTime::ZERO, datagram(call));
        assert!(server.uncommitted_bytes() > 0);
        let mut actions = Vec::new();
        server.quiesce(SimTime::from_millis(1), &mut actions);
        assert_eq!(server.uncommitted_bytes(), 0);
    }
}
