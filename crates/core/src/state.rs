//! Sharded per-client state: leases, byte-range locks and grace-period
//! recovery.
//!
//! The paper's v2 server is stateless by design, but every production
//! descendant (NFSv3 lockd, NFSv4 client-ID/stateid tables) carries
//! per-client state that must either survive a crash or be deliberately
//! reclaimed after one.  This module models that layer the way the request
//! path is already modelled: deterministic, allocation-light and sharded —
//! client records live in the shard `client_id % shards`, mirroring the
//! inode-sharded dispatch path.
//!
//! The life cycle:
//!
//! * RENEW registers a client (first contact) or renews its lease; a changed
//!   client boot verifier means the client rebooted, so the old incarnation's
//!   locks are revoked on the spot.
//! * LOCK grants byte-range locks keyed `(client_id, stateid, seqid)` with
//!   strict seqid monotonicity per owner; conflicting ranges are denied.
//! * A lease that is not renewed within `lease_duration` expires *lazily but
//!   deterministically*: every state operation first sweeps its shard, so
//!   expiry happens at the same simulated instant in every schedule.
//! * A server crash moves all held locks into a *reclaimable image* and opens
//!   a grace window: during grace only reclaims of imaged locks are admitted,
//!   anything else gets a counted soft rejection ([`NfsStatus::Grace`]) and
//!   the client retries after the window closes.
//!
//! Two oracle counters are the state-layer twin of the crash oracle's
//! `lost_acked_bytes`: [`StateStats::grace_conflicts`] (a grant during grace
//! that collides with another client's reclaimable pre-crash lock) and
//! [`StateStats::expired_lease_writes`] (a write admitted although the
//! writer's lease had expired).  Both are asserted zero by every sweep and
//! test.
//!
//! All containers are `BTreeMap`s: state operations run on the hub island of
//! the partitioned core, and orderless iteration (e.g. a `HashMap` sweep)
//! must never be a source of schedule-dependent behaviour.

use std::collections::BTreeMap;

use wg_nfsproto::{LockArgs, LockOk, NfsStatus, UnlockArgs};
use wg_simcore::{Duration, SimTime};

use crate::server::ClientId;

/// One held (or reclaimable) byte-range lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LockRecord {
    ino: u64,
    stateid: u32,
    /// Exclusive end of the range (`u64::MAX` = to end of file).
    offset: u64,
    end: u64,
}

impl LockRecord {
    fn from_args(ino: u64, stateid: u32, offset: u32, count: u32) -> Self {
        let offset = offset as u64;
        let end = if count == 0 {
            u64::MAX
        } else {
            offset + count as u64
        };
        LockRecord {
            ino,
            stateid,
            offset,
            end,
        }
    }

    fn overlaps(&self, other: &LockRecord) -> bool {
        self.ino == other.ino && self.offset < other.end && other.offset < self.end
    }
}

/// One registered client: its boot verifier, lease deadline, held locks and
/// the highest seqid consumed per stateid.
#[derive(Clone, Debug)]
struct ClientRecord {
    verifier: u64,
    expires: SimTime,
    locks: Vec<LockRecord>,
    /// `(stateid, last seqid)` pairs; clients hold few owners, so a sorted
    /// Vec beats a map.
    seqids: Vec<(u32, u32)>,
}

impl ClientRecord {
    fn last_seqid(&self, stateid: u32) -> Option<u32> {
        self.seqids
            .iter()
            .find(|(s, _)| *s == stateid)
            .map(|(_, q)| *q)
    }

    fn consume_seqid(&mut self, stateid: u32, seqid: u32) {
        match self.seqids.iter_mut().find(|(s, _)| *s == stateid) {
            Some(entry) => entry.1 = seqid,
            None => self.seqids.push((stateid, seqid)),
        }
    }
}

/// Counters of the state layer; the two `*_conflicts`/`*_writes` oracles at
/// the bottom must stay zero in every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateStats {
    /// First-contact registrations granted.
    pub leases_granted: u64,
    /// Lease renewals of already-registered clients.
    pub renewals: u64,
    /// RENEWs whose changed verifier revealed a client reboot.
    pub client_reboots: u64,
    /// Locks revoked because their owner re-registered with a new verifier.
    pub reboot_revoked_locks: u64,
    /// Leases that expired without renewal.
    pub leases_expired: u64,
    /// Locks orphaned (revoked) by lease expiry.
    pub state_orphaned: u64,
    /// Fresh (non-reclaim) locks granted.
    pub locks_granted: u64,
    /// Pre-crash locks successfully reclaimed during grace.
    pub locks_reclaimed: u64,
    /// Locks released by UNLOCK.
    pub locks_released: u64,
    /// Non-reclaim state requests soft-rejected during the grace period.
    pub grace_rejections: u64,
    /// Reclaims rejected (outside grace, or not matching the image).
    pub reclaim_rejections: u64,
    /// Lock/unlock requests rejected for a stale or replayed seqid.
    pub seqid_rejections: u64,
    /// Lock requests denied by a conflicting held range.
    pub lock_conflicts: u64,
    /// Lock/unlock requests from unregistered (or expired) clients.
    pub expired_state_rejections: u64,
    /// Writes rejected because the writer's registered lease had expired.
    pub expired_write_rejections: u64,
    /// Reclaimable locks discarded unclaimed when the grace window closed.
    pub reclaims_forfeited: u64,
    /// ORACLE: grants during grace conflicting with another client's
    /// reclaimable pre-crash lock.  Must be zero.
    pub grace_conflicts: u64,
    /// ORACLE: writes admitted although the writer's lease had expired.
    /// Must be zero.
    pub expired_lease_writes: u64,
}

/// One shard of the table (`client_id % shards`).
#[derive(Clone, Debug, Default)]
struct StateShard {
    clients: BTreeMap<ClientId, ClientRecord>,
}

/// The sharded client-state table owned by the server.
#[derive(Clone, Debug)]
pub struct ClientStateTable {
    shards: Vec<StateShard>,
    lease_duration: Duration,
    grace_period: Duration,
    /// Grace is open while `now < grace_until` (ZERO = never crashed).
    grace_until: SimTime,
    /// Pre-crash lock image, reclaimable during grace only.
    reclaimable: BTreeMap<ClientId, Vec<LockRecord>>,
    stats: StateStats,
}

impl ClientStateTable {
    /// An empty table with `shards` partitions.
    pub fn new(shards: usize, lease_duration: Duration, grace_period: Duration) -> Self {
        ClientStateTable {
            shards: vec![StateShard::default(); shards.max(1)],
            lease_duration,
            grace_period,
            grace_until: SimTime::ZERO,
            reclaimable: BTreeMap::new(),
            stats: StateStats::default(),
        }
    }

    fn shard_of(&self, client: ClientId) -> usize {
        client as usize % self.shards.len()
    }

    /// `true` while the post-crash grace window is open.
    pub fn in_grace(&self, now: SimTime) -> bool {
        now < self.grace_until
    }

    /// The counters.
    pub fn stats(&self) -> &StateStats {
        &self.stats
    }

    /// Registered clients with live leases.
    pub fn active_clients(&self) -> usize {
        self.shards.iter().map(|s| s.clients.len()).sum()
    }

    /// Currently held locks across all clients.
    pub fn held_locks(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.clients.values())
            .map(|c| c.locks.len())
            .sum()
    }

    /// Bytes of memory the table pins, computed arithmetically (the benches
    /// report bytes/client without touching the allocator).
    pub fn table_bytes(&self) -> u64 {
        let record =
            std::mem::size_of::<ClientRecord>() as u64 + std::mem::size_of::<ClientId>() as u64;
        let lock = std::mem::size_of::<LockRecord>() as u64;
        let seq = std::mem::size_of::<(u32, u32)>() as u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            for c in shard.clients.values() {
                bytes += record + c.locks.len() as u64 * lock + c.seqids.len() as u64 * seq;
            }
        }
        for locks in self.reclaimable.values() {
            bytes += std::mem::size_of::<ClientId>() as u64 + locks.len() as u64 * lock;
        }
        bytes
    }

    /// Expire every lease older than `now` (all shards).  Sweeps run lazily
    /// before each state operation on the touched shard; callers invoke this
    /// at end of run so abandoned leases are reclaimed deterministically.
    pub fn sweep(&mut self, now: SimTime) {
        for idx in 0..self.shards.len() {
            self.sweep_shard(idx, now);
        }
        self.close_grace_if_over(now);
    }

    fn sweep_shard(&mut self, idx: usize, now: SimTime) {
        let shard = &mut self.shards[idx];
        // BTreeMap: expiry order is client-id order, identical in every
        // schedule.
        let expired: Vec<ClientId> = shard
            .clients
            .iter()
            .filter(|(_, c)| c.expires <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let record = shard.clients.remove(&id).expect("collected above");
            self.stats.leases_expired += 1;
            self.stats.state_orphaned += record.locks.len() as u64;
        }
    }

    /// Forfeit the unclaimed reclaimable image once grace is over.
    fn close_grace_if_over(&mut self, now: SimTime) {
        if !self.in_grace(now) && !self.reclaimable.is_empty() {
            let forfeited: u64 = self.reclaimable.values().map(|v| v.len() as u64).sum();
            self.stats.reclaims_forfeited += forfeited;
            self.reclaimable.clear();
        }
    }

    /// RENEW: register or renew `client`.  Returns whether the server is in
    /// its grace period (the client uses this to start reclaiming).
    pub fn renew(&mut self, client: ClientId, verifier: u64, now: SimTime) -> bool {
        let idx = self.shard_of(client);
        self.sweep_shard(idx, now);
        self.close_grace_if_over(now);
        let expires = now + self.lease_duration;
        match self.shards[idx].clients.get_mut(&client) {
            Some(record) if record.verifier == verifier => {
                record.expires = expires;
                self.stats.renewals += 1;
            }
            Some(record) => {
                // The client rebooted: its old incarnation's locks are void.
                self.stats.client_reboots += 1;
                self.stats.reboot_revoked_locks += record.locks.len() as u64;
                record.verifier = verifier;
                record.expires = expires;
                record.locks.clear();
                record.seqids.clear();
                // It also forgot its pre-crash locks; nothing of its image is
                // reclaimable any more.
                if let Some(image) = self.reclaimable.remove(&client) {
                    self.stats.reclaims_forfeited += image.len() as u64;
                }
            }
            None => {
                self.shards[idx].clients.insert(
                    client,
                    ClientRecord {
                        verifier,
                        expires,
                        locks: Vec::new(),
                        seqids: Vec::new(),
                    },
                );
                self.stats.leases_granted += 1;
            }
        }
        self.in_grace(now)
    }

    /// Any held lock (other than `owner`'s own) overlapping `wanted`.
    fn conflicts_with_held(&self, owner: ClientId, wanted: &LockRecord) -> bool {
        self.shards.iter().any(|s| {
            s.clients
                .iter()
                .filter(|(&id, _)| id != owner)
                .any(|(_, c)| c.locks.iter().any(|l| l.overlaps(wanted)))
        })
    }

    /// Oracle check: a grant during grace must not collide with another
    /// client's still-reclaimable pre-crash lock.
    fn check_grace_conflict(&mut self, owner: ClientId, granted: &LockRecord, now: SimTime) {
        if !self.in_grace(now) {
            return;
        }
        let conflict = self
            .reclaimable
            .iter()
            .filter(|(&id, _)| id != owner)
            .any(|(_, locks)| locks.iter().any(|l| l.overlaps(granted)));
        if conflict {
            self.stats.grace_conflicts += 1;
        }
    }

    /// LOCK: acquire (or reclaim, during grace) a byte-range lock.
    pub fn lock(&mut self, args: &LockArgs, now: SimTime) -> Result<LockOk, NfsStatus> {
        let idx = self.shard_of(args.client_id);
        self.sweep_shard(idx, now);
        self.close_grace_if_over(now);
        let ino = args.file.inode();
        let wanted = LockRecord::from_args(ino, args.stateid, args.offset, args.count);
        // The owner must hold a live lease: state requests are what leases
        // gate (plain v2 reads/writes stay stateless).
        let Some(record) = self.shards[idx].clients.get(&args.client_id) else {
            self.stats.expired_state_rejections += 1;
            return Err(NfsStatus::Expired);
        };
        // Strict seqid monotonicity per (client, stateid): a replay or
        // reordering that slipped past the dupcache is refused, not re-run.
        if let Some(last) = record.last_seqid(args.stateid) {
            if args.seqid <= last {
                self.stats.seqid_rejections += 1;
                return Err(NfsStatus::Denied);
            }
        }
        if args.reclaim {
            // A reclaim is only valid during grace and only for a lock the
            // crashed incarnation actually held.
            let image_match = self.in_grace(now)
                && self
                    .reclaimable
                    .get(&args.client_id)
                    .map(|locks| locks.contains(&wanted))
                    .unwrap_or(false);
            if !image_match {
                self.stats.reclaim_rejections += 1;
                return Err(NfsStatus::Denied);
            }
            let image = self
                .reclaimable
                .get_mut(&args.client_id)
                .expect("matched above");
            image.retain(|l| *l != wanted);
            if image.is_empty() {
                self.reclaimable.remove(&args.client_id);
            }
            self.stats.locks_reclaimed += 1;
        } else {
            // New state during grace gets a counted soft rejection; the
            // client retries once the window is over.
            if self.in_grace(now) {
                self.stats.grace_rejections += 1;
                return Err(NfsStatus::Grace);
            }
            if self.conflicts_with_held(args.client_id, &wanted) {
                self.stats.lock_conflicts += 1;
                return Err(NfsStatus::Denied);
            }
            self.stats.locks_granted += 1;
        }
        self.check_grace_conflict(args.client_id, &wanted, now);
        let record = self.shards[idx]
            .clients
            .get_mut(&args.client_id)
            .expect("lease checked above");
        record.consume_seqid(args.stateid, args.seqid);
        record.locks.push(wanted);
        Ok(LockOk {
            stateid: args.stateid,
            seqid: args.seqid,
        })
    }

    /// UNLOCK: release a held range.  Releasing a range that is not held
    /// succeeds idempotently (the seqid is still consumed).
    pub fn unlock(&mut self, args: &UnlockArgs, now: SimTime) -> NfsStatus {
        let idx = self.shard_of(args.client_id);
        self.sweep_shard(idx, now);
        self.close_grace_if_over(now);
        let ino = args.file.inode();
        let wanted = LockRecord::from_args(ino, args.stateid, args.offset, args.count);
        let Some(record) = self.shards[idx].clients.get_mut(&args.client_id) else {
            self.stats.expired_state_rejections += 1;
            return NfsStatus::Expired;
        };
        if let Some(last) = record.last_seqid(args.stateid) {
            if args.seqid <= last {
                self.stats.seqid_rejections += 1;
                return NfsStatus::Denied;
            }
        }
        record.consume_seqid(args.stateid, args.seqid);
        let before = record.locks.len();
        record.locks.retain(|l| *l != wanted);
        if record.locks.len() < before {
            self.stats.locks_released += 1;
        }
        NfsStatus::Ok
    }

    /// Gate a WRITE from `client`: admitted unless the client is registered
    /// and its lease has expired (unregistered clients write statelessly, as
    /// in plain v2).  An expired lease is revoked on the spot and the write
    /// rejected — and the oracle counts any write that would slip through.
    pub fn write_admitted(&mut self, client: ClientId, now: SimTime) -> bool {
        let idx = self.shard_of(client);
        let expired = match self.shards[idx].clients.get(&client) {
            Some(record) => record.expires <= now,
            None => return true,
        };
        if expired {
            self.sweep_shard(idx, now);
            self.stats.expired_write_rejections += 1;
            return false;
        }
        // Oracle arm: if the admission logic above ever regresses, a write
        // admitted on an expired lease is counted, not hidden.
        if self.shards[idx]
            .clients
            .get(&client)
            .map(|r| r.expires <= now)
            .unwrap_or(false)
        {
            self.stats.expired_lease_writes += 1;
        }
        true
    }

    /// Server crash: every held lock moves into the reclaimable image, all
    /// volatile client records die, and the grace window opens until
    /// `recovered + grace_period`.
    pub fn crash(&mut self, recovered: SimTime) {
        // An unclaimed image from an *earlier* crash is gone for good.
        let stale: u64 = self.reclaimable.values().map(|v| v.len() as u64).sum();
        self.stats.reclaims_forfeited += stale;
        self.reclaimable.clear();
        for shard in self.shards.iter_mut() {
            for (&id, record) in shard.clients.iter() {
                if !record.locks.is_empty() {
                    self.reclaimable.insert(id, record.locks.clone());
                }
            }
            shard.clients.clear();
        }
        self.grace_until = recovered + self.grace_period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_nfsproto::FileHandle;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn fh(ino: u64) -> FileHandle {
        FileHandle::new(1, ino, 1)
    }

    fn lock_args(client: ClientId, ino: u64, seqid: u32, reclaim: bool) -> LockArgs {
        LockArgs {
            file: fh(ino),
            client_id: client,
            stateid: client,
            seqid,
            offset: 0,
            count: 8192,
            reclaim,
        }
    }

    fn table() -> ClientStateTable {
        ClientStateTable::new(4, Duration::from_millis(100), Duration::from_millis(50))
    }

    #[test]
    fn register_renew_and_expire() {
        let mut s = table();
        assert!(!s.renew(1, 7, t(0)));
        assert_eq!(s.stats().leases_granted, 1);
        assert!(s.lock(&lock_args(1, 10, 1, false), t(10)).is_ok());
        assert_eq!(s.active_clients(), 1);
        assert_eq!(s.held_locks(), 1);
        // Renewed in time: still alive well past the original deadline.
        s.renew(1, 7, t(90));
        s.sweep(t(150));
        assert_eq!(s.stats().leases_expired, 0);
        // Not renewed: expires, and its lock is orphaned with it.
        s.sweep(t(300));
        assert_eq!(s.stats().leases_expired, 1);
        assert_eq!(s.stats().state_orphaned, 1);
        assert_eq!(s.active_clients(), 0);
        assert_eq!(s.held_locks(), 0);
    }

    #[test]
    fn seqid_must_increase() {
        let mut s = table();
        s.renew(1, 7, t(0));
        assert!(s.lock(&lock_args(1, 10, 5, false), t(1)).is_ok());
        // Replayed and stale seqids are refused.
        assert_eq!(
            s.lock(&lock_args(1, 11, 5, false), t(2)),
            Err(NfsStatus::Denied)
        );
        assert_eq!(
            s.lock(&lock_args(1, 11, 4, false), t(3)),
            Err(NfsStatus::Denied)
        );
        assert_eq!(s.stats().seqid_rejections, 2);
        assert!(s.lock(&lock_args(1, 11, 6, false), t(4)).is_ok());
    }

    #[test]
    fn conflicting_ranges_are_denied() {
        let mut s = table();
        s.renew(1, 7, t(0));
        s.renew(2, 9, t(0));
        assert!(s.lock(&lock_args(1, 10, 1, false), t(1)).is_ok());
        assert_eq!(
            s.lock(&lock_args(2, 10, 1, false), t(2)),
            Err(NfsStatus::Denied)
        );
        assert_eq!(s.stats().lock_conflicts, 1);
        // A different file is fine.
        assert!(s.lock(&lock_args(2, 11, 2, false), t(3)).is_ok());
    }

    #[test]
    fn unregistered_clients_cannot_lock_but_can_write() {
        let mut s = table();
        assert_eq!(
            s.lock(&lock_args(5, 10, 1, false), t(0)),
            Err(NfsStatus::Expired)
        );
        assert_eq!(s.stats().expired_state_rejections, 1);
        assert!(s.write_admitted(5, t(0)));
    }

    #[test]
    fn expired_lease_rejects_writes_until_reregistration() {
        let mut s = table();
        s.renew(1, 7, t(0));
        assert!(s.write_admitted(1, t(50)));
        assert!(!s.write_admitted(1, t(200)));
        assert_eq!(s.stats().expired_write_rejections, 1);
        assert_eq!(s.stats().expired_lease_writes, 0, "oracle must stay zero");
        // The expiry revoked the record, so the client is unregistered again
        // (stateless writes) until it re-registers.
        assert!(s.write_admitted(1, t(201)));
        s.renew(1, 7, t(210));
        assert!(s.write_admitted(1, t(220)));
    }

    #[test]
    fn grace_admits_only_matching_reclaims() {
        let mut s = table();
        s.renew(1, 7, t(0));
        s.renew(2, 9, t(0));
        assert!(s.lock(&lock_args(1, 10, 1, false), t(1)).is_ok());
        s.crash(t(20));
        assert!(s.in_grace(t(30)));
        assert_eq!(s.active_clients(), 0, "volatile records die with the crash");
        // Re-registration during grace reports the window.
        assert!(s.renew(1, 7, t(30)));
        assert!(s.renew(2, 9, t(30)));
        // A fresh lock during grace is soft-rejected.
        assert_eq!(
            s.lock(&lock_args(2, 11, 1, false), t(31)),
            Err(NfsStatus::Grace)
        );
        assert_eq!(s.stats().grace_rejections, 1);
        // Client 2 cannot reclaim what it never held.
        assert_eq!(
            s.lock(&lock_args(2, 10, 2, true), t(32)),
            Err(NfsStatus::Denied)
        );
        assert_eq!(s.stats().reclaim_rejections, 1);
        // Client 1 reclaims its own lock.
        assert!(s.lock(&lock_args(1, 10, 2, true), t(33)).is_ok());
        assert_eq!(s.stats().locks_reclaimed, 1);
        assert_eq!(s.stats().grace_conflicts, 0, "oracle must stay zero");
        // After grace (and a fresh renewal — the 100 ms lease from t(30)
        // expired on its own), fresh locks flow again.
        assert!(!s.in_grace(t(199)));
        assert!(!s.renew(2, 9, t(199)));
        assert!(s.lock(&lock_args(2, 11, 3, false), t(200)).is_ok());
    }

    #[test]
    fn unclaimed_image_is_forfeited_when_grace_closes() {
        let mut s = table();
        s.renew(1, 7, t(0));
        assert!(s.lock(&lock_args(1, 10, 1, false), t(1)).is_ok());
        s.crash(t(20));
        // Nobody reclaims; first state op after the window forfeits the image.
        s.sweep(t(500));
        assert_eq!(s.stats().reclaims_forfeited, 1);
        // And the range is free again.
        s.renew(2, 9, t(510));
        assert!(s.lock(&lock_args(2, 10, 1, false), t(511)).is_ok());
    }

    #[test]
    fn client_reboot_revokes_old_incarnation() {
        let mut s = table();
        s.renew(1, 7, t(0));
        assert!(s.lock(&lock_args(1, 10, 1, false), t(1)).is_ok());
        // Same client, new boot verifier: locks are void, seqids reset.
        s.renew(1, 8, t(10));
        assert_eq!(s.stats().client_reboots, 1);
        assert_eq!(s.stats().reboot_revoked_locks, 1);
        assert_eq!(s.held_locks(), 0);
        assert!(s.lock(&lock_args(1, 10, 1, false), t(11)).is_ok());
    }

    #[test]
    fn unlock_releases_and_tolerates_unheld_ranges() {
        let mut s = table();
        s.renew(1, 7, t(0));
        assert!(s.lock(&lock_args(1, 10, 1, false), t(1)).is_ok());
        let unlock = UnlockArgs {
            file: fh(10),
            client_id: 1,
            stateid: 1,
            seqid: 2,
            offset: 0,
            count: 8192,
        };
        assert_eq!(s.unlock(&unlock, t(2)), NfsStatus::Ok);
        assert_eq!(s.stats().locks_released, 1);
        assert_eq!(s.held_locks(), 0);
        // Unheld: idempotent success, but the seqid was consumed.
        let again = UnlockArgs { seqid: 3, ..unlock };
        assert_eq!(s.unlock(&again, t(3)), NfsStatus::Ok);
        assert_eq!(s.stats().locks_released, 1);
        let replay = UnlockArgs { seqid: 3, ..unlock };
        assert_eq!(s.unlock(&replay, t(4)), NfsStatus::Denied);
    }

    #[test]
    fn table_bytes_track_registrations() {
        let mut s = table();
        assert_eq!(s.table_bytes(), 0);
        s.renew(1, 7, t(0));
        let one = s.table_bytes();
        assert!(one > 0);
        s.renew(2, 9, t(0));
        assert_eq!(s.table_bytes(), 2 * one);
        assert!(s.lock(&lock_args(1, 10, 1, false), t(1)).is_ok());
        assert!(s.table_bytes() > 2 * one);
    }
}
