//! Server configuration: write policy, storage, nfsd pool and CPU cost table.

use wg_simcore::Duration;

/// Which write-commit strategy the server uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WritePolicy {
    /// Fully synchronous per-write commit (the reference-port baseline the
    /// paper's "Without Write Gathering" rows measure).
    Standard,
    /// The paper's write-gathering algorithm (§6.8).
    Gathering,
    /// The [SIVA93] variant: use the first write's own data transfer as the
    /// latency window instead of procrastinating.
    FirstWriteLatency,
    /// "Dangerous mode": reply once the data is in volatile memory.  Violates
    /// the NFS crash-recovery contract; present for the ablation and the
    /// crash-consistency demonstration only.
    DangerousAsync,
}

/// Which stability semantics the write path offers clients.
///
/// [`StabilityMode::Stable`] is the NFS v2 contract the paper measures: every
/// WRITE is on stable storage before its reply.  [`StabilityMode::Unstable`]
/// is the NFSv3-style path the industry replaced it with: clients mark writes
/// `UNSTABLE`, the server acknowledges them from the unified buffer cache
/// with a boot verifier, and a later COMMIT makes a range stable.  The mode
/// is primarily a client/workload knob (the server always honours whatever
/// `stable_how` a request carries), recorded here so one configuration value
/// describes a whole experiment cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StabilityMode {
    /// Fully stable per-write commit (NFS v2; the default).
    Stable,
    /// `WRITE(UNSTABLE)` + `COMMIT` against the unified buffer cache.
    Unstable,
}

/// The order in which a gathering server releases a batch of pending replies.
///
/// §6.7: LIFO was tried first ("wake up the blocked client process sooner")
/// and produced dismal results; FIFO optimises the single sequential writer
/// and matches what standard servers do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ReplyOrder {
    /// First-in first-out (the paper's final choice and the default).
    Fifo,
    /// Last-in first-out (kept for the ablation that reproduces §6.7's
    /// observation).
    Lifo,
}

/// Which storage stack backs the exported filesystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StorageConfig {
    /// Number of RZ26 spindles (1 = single disk, 3 = the paper's stripe set).
    pub spindles: usize,
    /// Whether a Prestoserve NVRAM board accelerates the filesystem.
    pub prestoserve: bool,
}

impl StorageConfig {
    /// A single RZ26 disk.
    pub fn single_rz26() -> Self {
        StorageConfig {
            spindles: 1,
            prestoserve: false,
        }
    }

    /// A single RZ26 disk behind Prestoserve.
    pub fn single_rz26_presto() -> Self {
        StorageConfig {
            spindles: 1,
            prestoserve: true,
        }
    }

    /// The 3-disk stripe set of Tables 5 and 6.
    pub fn striped_rz26(prestoserve: bool) -> Self {
        StorageConfig {
            spindles: 3,
            prestoserve,
        }
    }
}

/// Per-operation CPU costs, in time on the reference (DEC 3400/3800-class)
/// processor.
///
/// These are the knobs that make the CPU-utilisation rows of the tables come
/// out: every RPC costs a dispatch, every link-layer fragment costs
/// reassembly work, every trip into UFS and every trip through the disk
/// driver costs cycles, every disk completion costs an interrupt, and copying
/// into NVRAM costs roughly a byte-copy loop.  Values are calibrated against
/// the paper's observed utilisations (e.g. ≈11 % CPU at ≈200 KB/s of
/// non-accelerated writes, ≈40 % at ≈1.1 MB/s through Prestoserve on
/// Ethernet).
#[derive(Clone, Debug, serde::Serialize)]
pub struct CostParams {
    /// Cost of receiving + dispatching one RPC (svc_run, XDR decode of the
    /// header, rfs_dispatch).
    pub rpc_dispatch: Duration,
    /// Cost of reassembling one link-layer fragment (charged per fragment of
    /// each arriving datagram).
    pub packet_reassembly: Duration,
    /// Cost of building and transmitting one reply.
    pub reply_send: Duration,
    /// Cost of one VOP_* call into the filesystem (argument translation,
    /// buffer-cache lookups), excluding data copies.
    pub ufs_trip: Duration,
    /// Copy cost per byte moved between the network buffers and the buffer
    /// cache (or NVRAM): the `uiomove` of the write path.
    pub copy_per_byte: Duration,
    /// Cost of setting up one disk transfer in the driver.
    pub driver_trip: Duration,
    /// Cost of fielding one disk-completion interrupt.
    pub interrupt: Duration,
    /// Extra per-request cost of the Prestoserve driver (queueing into NVRAM,
    /// scatter/gather setup).
    pub presto_trip: Duration,
    /// Cost of the gathering bookkeeping itself: the nfsd state scan, active
    /// write queue manipulation and transport-handle swap ("spending some CPU
    /// cycles trying to be clever", §9).
    pub gather_bookkeeping: Duration,
    /// Cost of one pass of the mbuf hunter over the socket buffer.
    pub mbuf_hunt: Duration,
    /// Cost of serving one non-write, non-read NFS operation (lookup, getattr,
    /// readdir entry assembly etc.) beyond the dispatch cost.
    pub lightweight_op: Duration,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            rpc_dispatch: Duration::from_micros(180),
            packet_reassembly: Duration::from_micros(60),
            reply_send: Duration::from_micros(120),
            ufs_trip: Duration::from_micros(90),
            copy_per_byte: Duration::from_nanos(20),
            driver_trip: Duration::from_micros(110),
            interrupt: Duration::from_micros(70),
            presto_trip: Duration::from_micros(80),
            gather_bookkeeping: Duration::from_micros(40),
            mbuf_hunt: Duration::from_micros(30),
            lightweight_op: Duration::from_micros(100),
        }
    }
}

/// Complete server configuration.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServerConfig {
    /// Number of nfsd service threads (the paper's experiments use 8; the SFS
    /// configuration of Figures 2–3 uses 32).
    pub nfsds: usize,
    /// The write-commit policy.
    pub policy: WritePolicy,
    /// Reply release order for gathered batches.
    pub reply_order: ReplyOrder,
    /// Storage stack.
    pub storage: StorageConfig,
    /// Procrastination interval (normally taken from the network medium: 8 ms
    /// Ethernet, 5 ms FDDI).
    pub procrastination: Duration,
    /// Maximum number of times an nfsd procrastinates before it must become
    /// the metadata writer (the paper uses exactly one).
    pub max_procrastinations: u32,
    /// Whether the "mbuf hunter" socket-buffer scan is enabled (§6.5).
    pub mbuf_hunter: bool,
    /// Socket buffer capacity in bytes (OSF/1 default: 256 KB).  This is the
    /// machine's whole receive-buffer pool: a sharded server partitions it
    /// evenly across its shards' incoming queues (with a 9 KB per-shard
    /// floor so every shard can always hold one full write datagram).
    pub socket_buffer_bytes: usize,
    /// CPU cost table.
    pub costs: CostParams,
    /// CPU speed relative to the cost-table reference machine (the DEC 3800 of
    /// Figures 2–3 is roughly 1.6× a DEC 3400).
    pub cpu_speed: f64,
    /// Duplicate request cache capacity (entries).
    pub dupcache_entries: usize,
    /// Usable capacity of the exported filesystem's data region, in bytes.
    /// Defaults to the single-RZ26 geometry; multi-client GB-scale sweeps
    /// raise it so aggregate working sets beyond one spindle's worth fit
    /// (addresses past the physical capacity simply pay full-stroke seeks).
    pub data_capacity: u64,
    /// Number of FFS-style inode groups the exported filesystem spreads its
    /// inodes over (see [`wg_ufs::FsParams::inode_groups`]).  `1` (the
    /// default) is the flat layout the paper's tables imply — every inode
    /// block of a small working set shares one stripe unit, so one member of
    /// a stripe set absorbs all metadata writes.  Scaled-out configurations
    /// raise it so metadata I/O spreads across the whole disk farm.
    pub inode_groups: usize,
    /// Whether disk blocks fetched by reads stay resident in the buffer
    /// cache (see [`wg_ufs::FsParams::read_caching`]).  Off by default: the
    /// paper's figures measure a cold cache.
    pub read_caching: bool,
    /// Number of request-path shards.  Each shard owns its own incoming
    /// socket queue, nfsd sub-pool and duplicate-request-cache partition;
    /// requests are routed by `inode % shards`, so per-file state (vnode
    /// locks, gather batches) never crosses a shard boundary.  `1` (the
    /// default) reproduces the paper's monolithic dispatch exactly.
    pub shards: usize,
    /// Number of CPU cores.  `1` (the default) is bit-identical to the
    /// paper's serial CPU; more cores let independent shards' processing
    /// steps overlap while utilisation is reported as an aggregate over the
    /// whole pool.
    pub cores: usize,
    /// Pipelined storage-stack execution.  With the knob off (the default)
    /// an I/O plan runs exactly as the paper's driver did: each transfer's
    /// driver setup, device service and completion interrupt chain on the
    /// previous transfer's completion.  With it on, the CPU pays the driver
    /// (and Presto) trips back-to-back to *enqueue* every transfer of the
    /// plan onto its spindle's own queue, then reaps completions (one
    /// interrupt per transfer, coalesced back-to-back when several land
    /// close together) as they arrive — so transfers of one plan, and plans
    /// of different shards, overlap on independent spindles of a stripe set.
    /// `false` is bit-identical to the pre-pipeline server.
    pub io_overlap: bool,
    /// How long a crashed server takes to boot before NVRAM recovery replay
    /// begins (kernel boot + fsck of a clean journal + mount).  Only
    /// exercised when a fault plan injects a crash; it has no effect on a
    /// fault-free run.
    pub reboot_time: Duration,
    /// Arm the bounded unified buffer cache (see
    /// [`wg_ufs::FsParams::cache_pages`]).  Off by default: the paper's
    /// server has an effectively unbounded cache and no write-behind, which
    /// is exactly what the golden tables pin.  Required for
    /// `WRITE(UNSTABLE)` to be honoured — without a managed cache there is
    /// no write-behind machinery to make unstable data stable later.
    pub unified_cache: bool,
    /// Capacity of the unified cache in 8 KB pages, used only when
    /// [`ServerConfig::unified_cache`] is set.
    pub cache_pages: u64,
    /// Fraction of the unified cache that may be dirty before writers are
    /// throttled (see [`wg_ufs::FsParams::dirty_ratio`]).
    pub dirty_ratio: f64,
    /// The stability semantics this experiment cell runs under (recorded on
    /// the server config so benches can label cells; the server itself
    /// honours the `stable_how` of each arriving WRITE).
    pub stability: StabilityMode,
    /// Interval between background write-behind passes over the unified
    /// cache's dirty pages.  Each pass drains one batch through the storage
    /// stack (NVRAM first when Presto is configured) and reschedules itself
    /// while dirty pages remain.
    pub writeback_interval: Duration,
    /// Arm the client-state layer (leases, byte-range locks, grace-period
    /// recovery; see [`crate::ClientStateTable`]).  Off by default: the
    /// paper's v2 server is stateless and every golden table pins that —
    /// with the knob off no state op arrives and the write path takes a
    /// single untaken branch.
    pub leases: bool,
    /// How long a granted lease lives without renewal, used only when
    /// [`ServerConfig::leases`] is set.
    pub lease_duration: Duration,
    /// Length of the post-crash grace window during which only reclaims are
    /// admitted, used only when [`ServerConfig::leases`] is set.
    pub grace_period: Duration,
}

impl ServerConfig {
    /// The configuration used by the paper's file-copy tables: 8 nfsds, a
    /// single RZ26, no acceleration, gathering disabled (baseline).
    pub fn standard() -> Self {
        ServerConfig {
            nfsds: 8,
            policy: WritePolicy::Standard,
            reply_order: ReplyOrder::Fifo,
            storage: StorageConfig::single_rz26(),
            procrastination: Duration::from_millis(8),
            max_procrastinations: 1,
            mbuf_hunter: true,
            socket_buffer_bytes: 256 * 1024,
            costs: CostParams::default(),
            cpu_speed: 1.0,
            dupcache_entries: 512,
            data_capacity: wg_ufs::FsParams::default().data_capacity,
            inode_groups: 1,
            read_caching: false,
            shards: 1,
            cores: 1,
            io_overlap: false,
            reboot_time: Duration::from_secs(1),
            unified_cache: false,
            cache_pages: 4096,
            dirty_ratio: 0.5,
            stability: StabilityMode::Stable,
            writeback_interval: Duration::from_millis(100),
            leases: false,
            lease_duration: Duration::from_secs(30),
            grace_period: Duration::from_secs(15),
        }
    }

    /// Same as [`ServerConfig::standard`] but with write gathering enabled.
    pub fn gathering() -> Self {
        ServerConfig {
            policy: WritePolicy::Gathering,
            ..ServerConfig::standard()
        }
    }

    /// Enable or disable Prestoserve acceleration.
    pub fn with_presto(mut self, on: bool) -> Self {
        self.storage.prestoserve = on;
        self
    }

    /// Use an `n`-spindle stripe set.
    pub fn with_spindles(mut self, n: usize) -> Self {
        self.storage.spindles = n;
        self
    }

    /// Set the procrastination interval (callers normally pass the medium's
    /// value).
    pub fn with_procrastination(mut self, d: Duration) -> Self {
        self.procrastination = d;
        self
    }

    /// Set the number of nfsds.
    pub fn with_nfsds(mut self, n: usize) -> Self {
        self.nfsds = n;
        self
    }

    /// Shard the request path `n` ways (see [`ServerConfig::shards`]).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Give the server `n` CPU cores (see [`ServerConfig::cores`]).
    pub fn with_cores(mut self, n: usize) -> Self {
        self.cores = n;
        self
    }

    /// Enable or disable pipelined storage-stack execution (see
    /// [`ServerConfig::io_overlap`]).
    pub fn with_io_overlap(mut self, on: bool) -> Self {
        self.io_overlap = on;
        self
    }

    /// Spread the filesystem's inodes over `n` FFS-style groups (see
    /// [`ServerConfig::inode_groups`]).
    pub fn with_inode_groups(mut self, n: usize) -> Self {
        self.inode_groups = n.max(1);
        self
    }

    /// Keep read-fetched blocks resident in the buffer cache (see
    /// [`ServerConfig::read_caching`]).
    pub fn with_read_caching(mut self, on: bool) -> Self {
        self.read_caching = on;
        self
    }

    /// Set the boot time a crashed server spends before recovery replay (see
    /// [`ServerConfig::reboot_time`]).
    pub fn with_reboot_time(mut self, d: Duration) -> Self {
        self.reboot_time = d;
        self
    }

    /// Arm the bounded unified buffer cache with `pages` 8 KB pages (see
    /// [`ServerConfig::unified_cache`]).  `pages == 0` disarms it.
    pub fn with_unified_cache(mut self, pages: u64) -> Self {
        self.unified_cache = pages > 0;
        if pages > 0 {
            self.cache_pages = pages;
        }
        self
    }

    /// Set the dirty-ratio writer throttle of the unified cache (see
    /// [`ServerConfig::dirty_ratio`]).
    pub fn with_dirty_ratio(mut self, ratio: f64) -> Self {
        self.dirty_ratio = ratio;
        self
    }

    /// Select the stability semantics of the experiment cell (see
    /// [`StabilityMode`]).
    pub fn with_stability(mut self, mode: StabilityMode) -> Self {
        self.stability = mode;
        self
    }

    /// Set the background write-behind interval of the unified cache (see
    /// [`ServerConfig::writeback_interval`]).
    pub fn with_writeback_interval(mut self, d: Duration) -> Self {
        self.writeback_interval = d;
        self
    }

    /// Arm the client-state layer (see [`ServerConfig::leases`]).
    pub fn with_leases(mut self, on: bool) -> Self {
        self.leases = on;
        self
    }

    /// Set the lease duration (see [`ServerConfig::lease_duration`]).
    pub fn with_lease_duration(mut self, d: Duration) -> Self {
        self.lease_duration = d;
        self
    }

    /// Set the post-crash grace period (see [`ServerConfig::grace_period`]).
    pub fn with_grace_period(mut self, d: Duration) -> Self {
        self.grace_period = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let std = ServerConfig::standard();
        assert_eq!(std.nfsds, 8);
        assert_eq!(std.policy, WritePolicy::Standard);
        assert_eq!(std.reply_order, ReplyOrder::Fifo);
        assert_eq!(std.socket_buffer_bytes, 256 * 1024);
        assert_eq!(std.max_procrastinations, 1);
        // The paper's machine: one dispatch queue, one CPU, serial driver.
        assert_eq!(std.shards, 1);
        assert_eq!(std.cores, 1);
        assert!(!std.io_overlap);
        // The unified cache and unstable writes post-date the paper: off by
        // default so every golden table keeps its original write path.
        assert!(!std.unified_cache);
        assert_eq!(std.stability, StabilityMode::Stable);
        // Likewise the client-state layer: the paper's server is stateless.
        assert!(!std.leases);
        assert_eq!(std.lease_duration, Duration::from_secs(30));
        assert_eq!(std.grace_period, Duration::from_secs(15));
        let g = ServerConfig::gathering();
        assert_eq!(g.policy, WritePolicy::Gathering);
    }

    #[test]
    fn builders_compose() {
        let cfg = ServerConfig::gathering()
            .with_presto(true)
            .with_spindles(3)
            .with_nfsds(32)
            .with_shards(4)
            .with_cores(2)
            .with_io_overlap(true)
            .with_procrastination(Duration::from_millis(5));
        assert!(cfg.storage.prestoserve);
        assert_eq!(cfg.storage.spindles, 3);
        assert_eq!(cfg.nfsds, 32);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.cores, 2);
        assert!(cfg.io_overlap);
        assert_eq!(cfg.procrastination, Duration::from_millis(5));
        let cell = ServerConfig::standard()
            .with_unified_cache(512)
            .with_dirty_ratio(0.25)
            .with_stability(StabilityMode::Unstable)
            .with_writeback_interval(Duration::from_millis(40));
        assert!(cell.unified_cache);
        assert_eq!(cell.cache_pages, 512);
        assert_eq!(cell.dirty_ratio, 0.25);
        assert_eq!(cell.stability, StabilityMode::Unstable);
        assert_eq!(cell.writeback_interval, Duration::from_millis(40));
        assert!(!ServerConfig::standard().with_unified_cache(0).unified_cache);
        let leased = ServerConfig::standard()
            .with_leases(true)
            .with_lease_duration(Duration::from_millis(750))
            .with_grace_period(Duration::from_millis(400));
        assert!(leased.leases);
        assert_eq!(leased.lease_duration, Duration::from_millis(750));
        assert_eq!(leased.grace_period, Duration::from_millis(400));
    }

    #[test]
    fn storage_presets() {
        assert_eq!(StorageConfig::single_rz26().spindles, 1);
        assert!(!StorageConfig::single_rz26().prestoserve);
        assert!(StorageConfig::single_rz26_presto().prestoserve);
        let s = StorageConfig::striped_rz26(true);
        assert_eq!(s.spindles, 3);
        assert!(s.prestoserve);
    }

    #[test]
    fn default_costs_are_small_but_nonzero() {
        let c = CostParams::default();
        assert!(c.rpc_dispatch > Duration::ZERO);
        assert!(c.copy_per_byte > Duration::ZERO);
        assert!(c.rpc_dispatch < Duration::from_millis(1));
        assert!(c.gather_bookkeeping < c.rpc_dispatch);
    }
}
