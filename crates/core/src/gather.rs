//! The data structures of the gathering algorithm: the active write queue and
//! per-file gather state.
//!
//! §6.2 of the paper: "A global array of nfsd state was created so that one
//! nfsd can ascertain the state of others [...] data structures that package
//! up active write requests for handoff and a queue of these active
//! requests."  In this reproduction the per-file [`FileGather`] plays both
//! roles: it records which nfsd (if any) is currently responsible for the
//! file's metadata flush and queues the write descriptors whose replies are
//! pending on that flush.

use wg_nfsproto::Xid;
use wg_simcore::SimTime;
use wg_ufs::InodeNumber;

/// One write whose data is in the filesystem but whose reply is deferred
/// until a metadata writer commits it.
#[derive(Clone, Debug)]
pub struct PendingWrite {
    /// The client that issued the write.
    pub client: u32,
    /// Its transaction id (needed to build the reply and to key the duplicate
    /// request cache).
    pub xid: Xid,
    /// Byte offset written.
    pub offset: u64,
    /// Bytes written.
    pub len: u64,
    /// When the request arrived at the server (latency accounting).
    pub arrived: SimTime,
}

/// Which stage the responsible nfsd is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatherPhase {
    /// The responsible nfsd is procrastinating: new writes for the file may
    /// still join this batch.
    Procrastinating,
    /// The responsible nfsd has snapshotted the batch and is flushing data and
    /// metadata: new writes must start a new batch.
    Flushing,
}

/// Per-file gathering state.
#[derive(Clone, Debug, Default)]
pub struct FileGather {
    /// Writes whose replies are pending on the next metadata flush.
    pub pending: Vec<PendingWrite>,
    /// The nfsd that has taken responsibility for the flush, if any, and the
    /// stage it is in.
    pub responsible: Option<(usize, GatherPhase)>,
    /// Lowest offset among pending writes (the `VOP_SYNCDATA` range hint).
    pub min_offset: u64,
    /// One past the highest offset among pending writes.
    pub max_offset: u64,
}

impl FileGather {
    /// A gather record with no pending writes.
    pub fn new() -> Self {
        FileGather {
            pending: Vec::new(),
            responsible: None,
            min_offset: u64::MAX,
            max_offset: 0,
        }
    }

    /// Queue a write descriptor and widen the flush range hint.
    pub fn push(&mut self, w: PendingWrite) {
        self.min_offset = self.min_offset.min(w.offset);
        self.max_offset = self.max_offset.max(w.offset + w.len);
        self.pending.push(w);
    }

    /// `true` if another nfsd can currently rely on someone else flushing:
    /// there is a responsible nfsd that has not yet snapshotted its batch.
    pub fn can_join(&self) -> bool {
        matches!(self.responsible, Some((_, GatherPhase::Procrastinating)))
    }

    /// Take the whole batch for flushing, returning the descriptors and the
    /// `(from, to)` range hint, and marking the responsible nfsd as flushing.
    pub fn take_batch(&mut self, nfsd: usize) -> (Vec<PendingWrite>, u64, u64) {
        self.responsible = Some((nfsd, GatherPhase::Flushing));
        let from = if self.pending.is_empty() {
            0
        } else {
            self.min_offset
        };
        let to = self.max_offset;
        self.min_offset = u64::MAX;
        self.max_offset = 0;
        (std::mem::take(&mut self.pending), from, to)
    }

    /// Clear responsibility after a flush completes.  If new writes queued
    /// while flushing they stay pending for the next batch.
    pub fn finish(&mut self, nfsd: usize) {
        if let Some((owner, _)) = self.responsible {
            if owner == nfsd {
                self.responsible = None;
            }
        }
    }

    /// Number of pending writes.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// Key for the per-file gather map.
pub type GatherKey = InodeNumber;

#[cfg(test)]
mod tests {
    use super::*;

    fn w(offset: u64, len: u64) -> PendingWrite {
        PendingWrite {
            client: 1,
            xid: Xid(offset as u32),
            offset,
            len,
            arrived: SimTime::ZERO,
        }
    }

    #[test]
    fn push_tracks_range() {
        let mut g = FileGather::new();
        g.push(w(16384, 8192));
        g.push(w(0, 8192));
        g.push(w(8192, 8192));
        assert_eq!(g.pending_count(), 3);
        assert_eq!(g.min_offset, 0);
        assert_eq!(g.max_offset, 24576);
    }

    #[test]
    fn join_rules_follow_phase() {
        let mut g = FileGather::new();
        assert!(!g.can_join());
        g.responsible = Some((0, GatherPhase::Procrastinating));
        assert!(g.can_join());
        g.responsible = Some((0, GatherPhase::Flushing));
        assert!(!g.can_join());
        g.responsible = None;
        assert!(!g.can_join());
    }

    #[test]
    fn take_batch_snapshots_and_resets() {
        let mut g = FileGather::new();
        g.push(w(0, 8192));
        g.push(w(8192, 8192));
        g.responsible = Some((3, GatherPhase::Procrastinating));
        let (batch, from, to) = g.take_batch(3);
        assert_eq!(batch.len(), 2);
        assert_eq!(from, 0);
        assert_eq!(to, 16384);
        assert_eq!(g.responsible, Some((3, GatherPhase::Flushing)));
        assert_eq!(g.pending_count(), 0);
        // Writes arriving during the flush belong to the next batch.
        g.push(w(16384, 8192));
        assert_eq!(g.pending_count(), 1);
        g.finish(3);
        assert_eq!(g.responsible, None);
        // Finishing by a non-owner does not clear someone else's claim.
        g.responsible = Some((5, GatherPhase::Procrastinating));
        g.finish(3);
        assert_eq!(g.responsible, Some((5, GatherPhase::Procrastinating)));
    }

    #[test]
    fn empty_batch_range_is_safe() {
        let mut g = FileGather::new();
        let (batch, from, to) = g.take_batch(0);
        assert!(batch.is_empty());
        assert_eq!(from, 0);
        assert_eq!(to, 0);
    }
}
