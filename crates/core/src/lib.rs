//! # wg-server — an NFS v2 server with write gathering
//!
//! This crate is the reproduction of the paper's contribution: the NFS server
//! layer of ULTRIX/OSF/1 extended with *write gathering* (Juszczak, USENIX
//! Winter 1994).  The server is modelled as a deterministic state machine
//! driven by a virtual clock; it owns the filesystem ([`wg_ufs::Ufs`]), the
//! storage device (a raw disk, a stripe set, or a Prestoserve-accelerated
//! version of either), the shared CPU, the bounded socket buffer, a pool of
//! `nfsd` service threads, and a duplicate request cache.
//!
//! ## Write policies
//!
//! The server implements four interchangeable write policies
//! ([`WritePolicy`]):
//!
//! * [`WritePolicy::Standard`] — the reference-port baseline: every WRITE is
//!   committed (data, then metadata) before its reply is sent, all under the
//!   file's vnode lock.
//! * [`WritePolicy::Gathering`] — the paper's §6.8 algorithm: hand the data to
//!   UFS (delayed for plain disks, data-only-sync for accelerated ones), then
//!   try to leave the metadata update to another nfsd; procrastinate once for
//!   a transport-dependent interval if nobody else is around; otherwise become
//!   the metadata writer, flush gathered data with `VOP_SYNCDATA`, flush
//!   metadata once with `VOP_FSYNC`, and send every pending reply FIFO.
//! * [`WritePolicy::FirstWriteLatency`] — the [SIVA93] alternative the paper
//!   compares against: the first write's own synchronous data transfer is the
//!   latency window during which other writes may arrive.
//! * [`WritePolicy::DangerousAsync`] — "dangerous mode": reply after the data
//!   reaches volatile memory.  Included because the paper discusses it as the
//!   industry's other answer; it violates the crash-recovery contract and the
//!   crash-consistency tests demonstrate exactly that.
//!
//! ## Interface
//!
//! The orchestrator (see `wg-workload`) feeds the server [`ServerInput`]s —
//! arriving datagrams and timer wake-ups — and receives [`ServerAction`]s —
//! replies to transmit and wake-ups to schedule.  Everything in between
//! (socket buffer, nfsd scheduling, vnode locks, gathering, disk and NVRAM
//! latencies, CPU contention) happens inside this crate and is unit-tested
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dupcache;
pub mod gather;
pub mod handles;
pub mod server;
pub mod state;
pub mod stats;

pub use config::{CostParams, ReplyOrder, ServerConfig, StabilityMode, StorageConfig, WritePolicy};
pub use dupcache::DuplicateRequestCache;
pub use gather::{FileGather, GatherPhase, PendingWrite};
pub use handles::{attributes_to_fattr, fs_error_to_status, handle_for, ino_from_handle};
pub use server::{ClientId, NfsServer, ServerAction, ServerInput};
pub use state::{ClientStateTable, StateStats};
pub use stats::ServerStats;
