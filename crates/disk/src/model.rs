//! The single-spindle disk model.

use std::collections::VecDeque;

use crate::device::{BlockDevice, DeviceStats, DiskRequest, SpindleStats};
use wg_simcore::{Duration, SimTime};

/// Mechanical and interface parameters of a disk drive.
///
/// The values behind [`DiskParams::rz26`] are calibrated so that:
///
/// * a synchronous, non-sequential 8 KB write takes ≈13–16 ms (the paper's
///   baseline tables show 61–77 such transactions per second), and
/// * large clustered sequential writes sustain ≈1.8–1.9 MB/s (the paper notes
///   Table 4 drives the RZ26 "at the raw device write bandwidth limit for 64 K
///   transfers").
#[derive(Clone, Debug, serde::Serialize)]
pub struct DiskParams {
    /// Human-readable model name.
    pub name: String,
    /// Fixed per-request controller/driver overhead.
    pub controller_overhead: Duration,
    /// Shortest (track-to-track) seek.
    pub track_to_track_seek: Duration,
    /// Average seek (roughly a 1/3-stroke seek).
    pub average_seek: Duration,
    /// Time for one full platter rotation.
    pub rotation_time: Duration,
    /// Sustained media transfer rate in bytes per second.
    pub media_rate: f64,
    /// Usable capacity in bytes (used to scale seek distances).
    pub capacity: u64,
}

impl DiskParams {
    /// Parameters approximating the DEC RZ26: a 1.05 GB, 5400 RPM SCSI drive
    /// of the early 1990s.
    pub fn rz26() -> Self {
        DiskParams {
            name: "RZ26".to_string(),
            controller_overhead: Duration::from_micros(1_000),
            track_to_track_seek: Duration::from_micros(1_700),
            average_seek: Duration::from_micros(9_500),
            rotation_time: Duration::from_micros(11_111), // 5400 RPM
            media_rate: 2.3e6,
            capacity: 1_050_000_000,
        }
    }

    /// A deliberately slow disk used in tests and ablations (long seeks, low
    /// media rate) so that disk-bound and CPU-bound behaviours can be told
    /// apart.
    pub fn slow_test_disk() -> Self {
        DiskParams {
            name: "slow-test".to_string(),
            controller_overhead: Duration::from_millis(2),
            track_to_track_seek: Duration::from_millis(5),
            average_seek: Duration::from_millis(20),
            rotation_time: Duration::from_millis(16),
            media_rate: 1.0e6,
            capacity: 100_000_000,
        }
    }
}

/// A FIFO, non-preemptive single-spindle disk.
///
/// The model tracks the byte address just past the previous transfer; a
/// request that starts exactly there is *sequential* and pays neither seek nor
/// rotational latency, which is how UFS clustering and Prestoserve draining
/// approach the raw media rate.  Any other request pays a distance-dependent
/// seek plus half a rotation on average.
#[derive(Clone, Debug)]
pub struct Disk {
    params: DiskParams,
    head_pos: u64,
    busy_until: SimTime,
    stats: DeviceStats,
    /// Completion times of enqueued requests not yet known to be finished:
    /// the spindle's FIFO queue, drained lazily as submissions observe later
    /// `now` values.  Only used for queue-depth observability — service
    /// times are entirely determined by `busy_until` and `head_pos`.
    queue: VecDeque<SimTime>,
    /// Deepest the queue ever got since the last stats reset.
    max_queue_depth: u64,
}

impl Disk {
    /// Create a disk that is idle with its head at address zero.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            head_pos: 0,
            busy_until: SimTime::ZERO,
            stats: DeviceStats::new(),
            queue: VecDeque::new(),
            max_queue_depth: 0,
        }
    }

    /// An RZ26 drive (the disk used in every table of the paper).
    pub fn rz26() -> Self {
        Disk::new(DiskParams::rz26())
    }

    /// The drive's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Pure service-time computation for a request that would start with the
    /// head at `head_pos`.  Exposed for unit testing and for capacity
    /// estimation in the benchmark harness.
    pub fn service_time(&self, req: DiskRequest) -> Duration {
        let sequential = req.addr == self.head_pos;
        let mut t = self.params.controller_overhead;
        if !sequential {
            t += self.seek_time(req.addr);
            // Half a rotation of latency on average for a non-sequential
            // access.
            t += Duration::from_nanos(self.params.rotation_time.as_nanos() / 2);
        }
        t += Duration::from_secs_f64(req.len as f64 / self.params.media_rate);
        t
    }

    fn seek_time(&self, target: u64) -> Duration {
        let distance = self.head_pos.abs_diff(target);
        if distance == 0 {
            return Duration::ZERO;
        }
        let frac = (distance as f64 / self.params.capacity as f64).clamp(0.0, 1.0);
        // Square-root seek curve pinned so that a 1/3-stroke seek costs the
        // quoted average: seek(d) = t2t + (avg - t2t) * sqrt(3 d), capped at a
        // full-stroke seek of roughly twice the average.
        let t2t = self.params.track_to_track_seek.as_secs_f64();
        let avg = self.params.average_seek.as_secs_f64();
        let full = avg * 2.0;
        let seek = (t2t + (avg - t2t) * (3.0 * frac).sqrt()).min(full);
        Duration::from_secs_f64(seek)
    }
}

impl Disk {
    /// The number of requests enqueued but not yet completed at `now`
    /// (including any in service).  Drains finished entries from the queue.
    pub fn queue_depth_at(&mut self, now: SimTime) -> u64 {
        while self.queue.front().is_some_and(|&done| done <= now) {
            self.queue.pop_front();
        }
        self.queue.len() as u64
    }

    /// Deepest the FIFO queue ever got since the last stats reset.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth
    }
}

impl BlockDevice for Disk {
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> SimTime {
        let service = self.service_time(req);
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        self.head_pos = req.addr + req.len;
        self.stats.record_transfer(req.len, service);
        self.queue_depth_at(now);
        self.queue.push_back(done);
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len() as u64);
        done
    }

    fn stats(&self) -> DeviceStats {
        self.stats.clone()
    }

    fn spindle_stats(&self) -> Vec<SpindleStats> {
        vec![SpindleStats {
            stats: self.stats.clone(),
            max_queue_depth: self.max_queue_depth,
        }]
    }

    fn reset_stats(&mut self) {
        self.stats = DeviceStats::new();
        self.max_queue_depth = 0;
    }

    fn free_at(&self) -> SimTime {
        self.busy_until
    }

    fn describe(&self) -> String {
        self.params.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::IoKind;

    #[test]
    fn sequential_writes_avoid_seek_and_rotation() {
        let disk = Disk::rz26();
        let first = disk.service_time(DiskRequest::write(0, 8192));
        // Head starts at 0 so the first request is "sequential" by definition.
        let mut disk2 = Disk::rz26();
        disk2.submit(SimTime::ZERO, DiskRequest::write(0, 8192));
        let sequential = disk2.service_time(DiskRequest::write(8192, 8192));
        let random = disk2.service_time(DiskRequest::write(500_000_000, 8192));
        assert!(sequential < random);
        assert_eq!(first, sequential);
        // A sequential 8 KB transfer is only overhead + media time: well under 6 ms.
        assert!(
            sequential < Duration::from_millis(6),
            "sequential {sequential}"
        );
        // A random 8 KB write costs seek + rotation: comfortably over 10 ms.
        assert!(random > Duration::from_millis(10), "random {random}");
    }

    #[test]
    fn rz26_baseline_matches_paper_order_of_magnitude() {
        // The paper's no-gathering tables show 61-77 disk transactions/second
        // for a mix of data/inode/indirect writes.  A mid-distance 8 KB write
        // should therefore take roughly 12-17 ms.
        let mut disk = Disk::rz26();
        disk.submit(SimTime::ZERO, DiskRequest::write(100_000_000, 8192));
        let t = disk.service_time(DiskRequest::write(130_000_000, 8192));
        assert!(
            t > Duration::from_millis(10) && t < Duration::from_millis(20),
            "8K mid-seek write took {t}"
        );
    }

    #[test]
    fn large_sequential_transfers_approach_media_rate() {
        let mut disk = Disk::rz26();
        let mut now = SimTime::ZERO;
        let chunk = 65_536u64;
        let total = 10 * 1024 * 1024u64;
        let mut addr = 0;
        while addr < total {
            now = disk.submit(now, DiskRequest::write(addr, chunk));
            addr += chunk;
        }
        let secs = now.as_secs_f64();
        let rate = total as f64 / secs;
        // Sustained rate should be within ~20% of the media rate.
        assert!(rate > 1.8e6, "sustained sequential rate only {rate:.0} B/s");
        assert!(rate <= 2.3e6 + 1.0);
    }

    #[test]
    fn fifo_queueing_delays_later_requests() {
        let mut disk = Disk::rz26();
        let first = disk.submit(SimTime::ZERO, DiskRequest::write(200_000_000, 8192));
        // Submitted at the same instant, must wait for the first.
        let second = disk.submit(SimTime::ZERO, DiskRequest::write(400_000_000, 8192));
        assert!(second > first);
        assert_eq!(disk.free_at(), second);
    }

    #[test]
    fn stats_accumulate_per_transfer() {
        let mut disk = Disk::rz26();
        disk.submit(SimTime::ZERO, DiskRequest::write(0, 8192));
        disk.submit(SimTime::ZERO, DiskRequest::read(8192, 4096));
        let stats = disk.stats();
        assert_eq!(stats.transfers.events(), 2);
        assert_eq!(stats.transfers.bytes(), 8192 + 4096);
        disk.reset_stats();
        assert_eq!(disk.stats().transfers.events(), 0);
    }

    #[test]
    fn describe_and_params_expose_calibration() {
        let disk = Disk::rz26();
        assert_eq!(disk.describe(), "RZ26");
        assert_eq!(disk.params().capacity, 1_050_000_000);
        let slow = Disk::new(DiskParams::slow_test_disk());
        let fast_t = disk.service_time(DiskRequest {
            addr: 300_000_000,
            len: 8192,
            kind: IoKind::Write,
        });
        let slow_t = slow.service_time(DiskRequest {
            addr: 30_000_000,
            len: 8192,
            kind: IoKind::Write,
        });
        assert!(slow_t > fast_t);
    }

    #[test]
    fn queue_depth_tracks_outstanding_requests() {
        let mut disk = Disk::rz26();
        assert_eq!(disk.queue_depth_at(SimTime::ZERO), 0);
        // Three requests enqueued at the same instant stack up FIFO.
        let d1 = disk.submit(SimTime::ZERO, DiskRequest::write(100_000_000, 8192));
        disk.submit(SimTime::ZERO, DiskRequest::write(300_000_000, 8192));
        let d3 = disk.submit(SimTime::ZERO, DiskRequest::write(500_000_000, 8192));
        assert_eq!(disk.max_queue_depth(), 3);
        assert_eq!(disk.queue_depth_at(SimTime::ZERO), 3);
        // After the first completes, two remain; after the last, none.
        assert_eq!(disk.queue_depth_at(d1), 2);
        assert_eq!(disk.queue_depth_at(d3), 0);
        let spindles = disk.spindle_stats();
        assert_eq!(spindles.len(), 1);
        assert_eq!(spindles[0].max_queue_depth, 3);
        assert_eq!(spindles[0].stats.transfers.events(), 3);
        disk.reset_stats();
        assert_eq!(disk.max_queue_depth(), 0);
    }

    #[test]
    fn submit_at_and_batch_have_queued_fifo_semantics() {
        // For a single spindle, queued submission is exactly `submit`.
        let mut chained = Disk::rz26();
        let mut batched = Disk::rz26();
        let reqs = [
            DiskRequest::write(100_000_000, 8192),
            DiskRequest::write(300_000_000, 8192),
            DiskRequest::write(500_000_000, 8192),
        ];
        let mut serial = Vec::new();
        for &r in &reqs {
            serial.push(chained.submit(SimTime::ZERO, r));
        }
        let batch = batched.submit_batch(SimTime::ZERO, &reqs);
        assert_eq!(serial, batch);
        // FIFO: completions are monotone in submission order.
        assert!(batch.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn idle_gap_is_not_busy_time() {
        let mut disk = Disk::rz26();
        let done = disk.submit(SimTime::ZERO, DiskRequest::write(0, 8192));
        // Next request arrives long after the first completed.
        let later = done + Duration::from_secs(1);
        let done2 = disk.submit(later, DiskRequest::write(8192, 8192));
        assert!(done2 > later);
        let busy = disk.stats().busy.busy_time();
        assert!(busy < Duration::from_millis(20));
    }
}
