//! # wg-disk — disk service-time model and stripe driver
//!
//! The paper's evaluation is dominated by the behaviour of a single RZ26 SCSI
//! disk (and a 3-disk stripe set built from them): a synchronous 8 KB write
//! costs a seek, half a rotation and a short transfer, while a clustered 64 KB
//! write costs almost the same — which is exactly why write gathering plus UFS
//! clustering wins.  This crate models that behaviour:
//!
//! * [`DiskParams`] — mechanical/interface parameters with an
//!   [`DiskParams::rz26`] calibration for the drive used in every table,
//! * [`Disk`] — a FIFO, non-preemptive single-spindle model that tracks head
//!   position so sequential transfers avoid seek and rotation costs,
//! * [`StripeSet`] — the simple striping driver from the paper's Results
//!   section (3 × RZ26 in Tables 5 and 6),
//! * [`BlockDevice`] — the object-safe interface the filesystem and NVRAM
//!   layers drive, with uniform [`DeviceStats`] (KB/s and transactions/s, the
//!   two disk columns in every table), queued submission
//!   ([`BlockDevice::submit_at`] / [`BlockDevice::submit_batch`]) so pieces
//!   of different logical requests interleave per spindle, and a
//!   per-spindle [`SpindleStats`] breakdown for overlap observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod model;
pub mod stripe;

pub use device::{BlockDevice, DeviceStats, DiskRequest, IoKind, SpindleStats};
pub use model::{Disk, DiskParams};
pub use stripe::StripeSet;
