//! The block-device interface and its statistics.

use wg_simcore::{Counter, Duration, SimTime, Utilization};

/// Whether an I/O transfers data to or from the medium.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IoKind {
    /// A read from the medium.
    Read,
    /// A write to the medium.
    Write,
}

/// One request submitted to a block device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DiskRequest {
    /// Starting byte address on the device.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub kind: IoKind,
}

impl DiskRequest {
    /// A write request.
    pub fn write(addr: u64, len: u64) -> Self {
        DiskRequest {
            addr,
            len,
            kind: IoKind::Write,
        }
    }

    /// A read request.
    pub fn read(addr: u64, len: u64) -> Self {
        DiskRequest {
            addr,
            len,
            kind: IoKind::Read,
        }
    }
}

/// Throughput and utilisation statistics for a block device.
///
/// `transfers` counts *device transactions* — the quantity in the
/// "server disk (trans/sec)" rows of Tables 1–6.  For a stripe set, each
/// member-disk transfer counts as one transaction, matching how the paper
/// reports "server disks (trans/sec)" for the 3-drive configuration.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct DeviceStats {
    /// Completed transfers (events) and bytes moved.
    pub transfers: Counter,
    /// Accumulated medium busy time.
    pub busy: Utilization,
}

impl DeviceStats {
    /// Create zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed transfer.
    pub fn record_transfer(&mut self, bytes: u64, service: Duration) {
        self.transfers.record(bytes);
        self.busy.add_busy(service);
    }

    /// Merge the statistics of another device (used by the stripe driver).
    /// O(1): totals are combined directly, never replayed event by event.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.transfers = Counter::from_totals(
            self.transfers.events() + other.transfers.events(),
            self.transfers.bytes() + other.transfers.bytes(),
        );
        self.busy.add_busy(other.busy.busy_time());
    }

    /// Disk throughput in KB/s over an observed span.
    pub fn kb_per_sec(&self, observed: Duration) -> f64 {
        self.transfers.kb_per_sec(observed)
    }

    /// Disk transactions per second over an observed span.
    pub fn transfers_per_sec(&self, observed: Duration) -> f64 {
        self.transfers.events_per_sec(observed)
    }

    /// Medium utilisation percentage over an observed span.
    pub fn utilization_percent(&self, observed: Duration) -> f64 {
        self.busy.percent(observed)
    }
}

/// Per-spindle breakdown of a device's activity, for stripe sets and sweeps
/// that need to see whether transfers actually overlapped across members.
///
/// A single [`crate::Disk`] reports one entry; a [`crate::StripeSet`] reports
/// one per member in member order; an accelerator reports its underlying
/// device's breakdown.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct SpindleStats {
    /// Transfers and busy time of this spindle alone.
    pub stats: DeviceStats,
    /// Deepest FIFO queue this spindle ever held (requests enqueued but not
    /// yet completed, including the one in service) since the last stats
    /// reset.
    pub max_queue_depth: u64,
}

impl SpindleStats {
    /// Spindle busy percentage over an observed span.
    pub fn busy_percent(&self, observed: Duration) -> f64 {
        self.stats.utilization_percent(observed)
    }
}

/// The interface the filesystem and NVRAM layers use to drive storage.
///
/// Implementations are passive service-time models: [`BlockDevice::submit`]
/// returns the simulated completion time of the request, assuming the device
/// serves requests in FIFO order.
///
/// ## Queued submission
///
/// [`BlockDevice::submit_at`] is the *queued* entry point of the pipelined
/// storage stack: the request is enqueued at `now` on the FIFO queue of the
/// spindle that owns its address (for a stripe set, each piece joins its own
/// member's queue) and the returned completion time reflects only that
/// queue's service clock.  Pieces of *different* logical requests therefore
/// interleave per spindle instead of chaining on a set-wide [`free_at`]
/// (`BlockDevice::free_at`).  Callers that want the old serial behaviour
/// simply submit each request at the previous one's completion time — which
/// is exactly what the non-overlapped server I/O loop does.
pub trait BlockDevice {
    /// Submit a request at simulated time `now`; returns its completion time.
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> SimTime;

    /// Queued submission: enqueue the request at `now` on the owning
    /// spindle's FIFO queue and return its completion time.  The default
    /// forwards to [`BlockDevice::submit`], which already has queued
    /// semantics for the single-spindle and stripe models.
    fn submit_at(&mut self, now: SimTime, req: DiskRequest) -> SimTime {
        self.submit(now, req)
    }

    /// Enqueue a batch of requests, all at the same instant `now`, returning
    /// each request's completion time in submission order.  Pieces of
    /// distinct requests interleave per spindle.
    fn submit_batch(&mut self, now: SimTime, reqs: &[DiskRequest]) -> Vec<SimTime> {
        reqs.iter().map(|&r| self.submit_at(now, r)).collect()
    }

    /// Aggregate statistics since construction (or the last reset).
    fn stats(&self) -> DeviceStats;

    /// Per-spindle breakdown of the same statistics (one entry per member
    /// spindle, in member order).  The default reports the aggregate as a
    /// single spindle with no queue-depth information.
    fn spindle_stats(&self) -> Vec<SpindleStats> {
        vec![SpindleStats {
            stats: self.stats(),
            max_queue_depth: 0,
        }]
    }

    /// Clear accumulated statistics (used between experiment phases so that
    /// file-creation setup I/O does not pollute the measured copy phase).
    fn reset_stats(&mut self);

    /// The time at which the device becomes idle given everything submitted
    /// so far.
    fn free_at(&self) -> SimTime;

    /// A short human-readable description (e.g. `"RZ26"`, `"3 x RZ26 stripe"`).
    fn describe(&self) -> String;

    /// Server crash/reboot recovery hook: replay any battery-backed contents
    /// to the medium and return the time the replay completes.  Plain disks
    /// hold nothing volatile (the server discards its own dirty cache), so
    /// the default recovers instantly.
    fn crash_recover(&mut self, now: SimTime) -> SimTime {
        now
    }

    /// Battery health hook for battery-backed accelerators: `false` degrades
    /// the device to write-through until re-armed with `true`.  Returns the
    /// time the transition completes (an emergency drain may take a while).
    /// Plain disks have no battery; the default is a no-op.
    fn set_battery(&mut self, _healthy: bool, now: SimTime) -> SimTime {
        now
    }

    /// Bytes accepted and acknowledged as stable but not yet on the final
    /// medium (an accelerator's battery-backed contents).  Zero for plain
    /// disks — and required to be zero after [`BlockDevice::crash_recover`].
    fn pending_stable_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let w = DiskRequest::write(4096, 8192);
        assert_eq!(w.kind, IoKind::Write);
        assert_eq!(w.addr, 4096);
        assert_eq!(w.len, 8192);
        let r = DiskRequest::read(0, 512);
        assert_eq!(r.kind, IoKind::Read);
    }

    #[test]
    fn stats_rates() {
        let mut s = DeviceStats::new();
        s.record_transfer(8192, Duration::from_millis(10));
        s.record_transfer(8192, Duration::from_millis(10));
        let one_sec = Duration::from_secs(1);
        assert!((s.kb_per_sec(one_sec) - 16.0).abs() < 1e-9);
        assert!((s.transfers_per_sec(one_sec) - 2.0).abs() < 1e-9);
        assert!((s.utilization_percent(one_sec) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_preserves_totals() {
        let mut a = DeviceStats::new();
        a.record_transfer(1000, Duration::from_millis(1));
        a.record_transfer(2000, Duration::from_millis(2));
        let mut b = DeviceStats::new();
        b.record_transfer(3000, Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.transfers.events(), 3);
        assert_eq!(a.transfers.bytes(), 6000);
        assert_eq!(a.busy.busy_time(), Duration::from_millis(6));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = DeviceStats::new();
        a.record_transfer(500, Duration::from_millis(5));
        a.merge(&DeviceStats::new());
        assert_eq!(a.transfers.events(), 1);
        assert_eq!(a.transfers.bytes(), 500);
    }

    #[test]
    fn merge_stays_exact_at_transfer_counts_that_would_choke_a_replay() {
        // A billion-transfer history must merge instantly: the old
        // implementation replayed one synthetic event per transfer.
        let mut a = DeviceStats::new();
        a.transfers = Counter::from_totals(1_000_000_000, 8_192_000_000_000);
        let mut b = DeviceStats::new();
        b.transfers = Counter::from_totals(500_000_000, 4_096_000_000_000);
        a.merge(&b);
        assert_eq!(a.transfers.events(), 1_500_000_000);
        assert_eq!(a.transfers.bytes(), 12_288_000_000_000);
    }

    #[test]
    fn spindle_stats_percent_and_default() {
        let mut s = SpindleStats::default();
        s.stats.record_transfer(8192, Duration::from_millis(100));
        assert!((s.busy_percent(Duration::from_secs(1)) - 10.0).abs() < 1e-9);
        assert_eq!(s.max_queue_depth, 0);
    }
}
