//! The striping driver.
//!
//! Tables 5 and 6 of the paper use "a stripe set of three RZ26 disks"
//! (provided by a disk striping driver in ULTRIX).  [`StripeSet`] reproduces
//! that: the logical byte address space is split into fixed-size stripe units
//! distributed round-robin over the member disks, a logical request is split
//! at stripe-unit boundaries, and the logical completion time is the latest
//! completion among the pieces.

use crate::device::{BlockDevice, DeviceStats, DiskRequest, SpindleStats};
use crate::model::{Disk, DiskParams};
use wg_simcore::SimTime;

/// A round-robin striping driver over identical member disks.
#[derive(Clone, Debug)]
pub struct StripeSet {
    disks: Vec<Disk>,
    stripe_unit: u64,
}

impl StripeSet {
    /// Build a stripe set of `n` disks with the given parameters and stripe
    /// unit (bytes).  Panics if `n` is zero or the stripe unit is zero.
    pub fn new(n: usize, params: DiskParams, stripe_unit: u64) -> Self {
        assert!(n > 0, "stripe set needs at least one disk");
        assert!(stripe_unit > 0, "stripe unit must be non-zero");
        StripeSet {
            disks: (0..n).map(|_| Disk::new(params.clone())).collect(),
            stripe_unit,
        }
    }

    /// The 3 × RZ26 stripe set used in Tables 5 and 6, with a 64 KB stripe
    /// unit matching the UFS cluster size.
    pub fn three_rz26() -> Self {
        StripeSet::new(3, DiskParams::rz26(), 64 * 1024)
    }

    /// Number of member disks.
    pub fn width(&self) -> usize {
        self.disks.len()
    }

    /// The stripe unit in bytes.
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// The earliest time member `index` becomes idle (None past the width).
    /// The pipelined I/O loop and the invariant tests use this to observe
    /// per-spindle queues directly.
    pub fn member_free_at(&self, index: usize) -> Option<SimTime> {
        self.disks.get(index).map(|d| d.free_at())
    }

    /// Split a logical request into per-disk physical pieces.
    ///
    /// Returns `(disk_index, physical_request)` pairs in logical address
    /// order.  Exposed for unit tests.
    pub fn split(&self, req: DiskRequest) -> Vec<(usize, DiskRequest)> {
        let mut pieces = Vec::new();
        let n = self.disks.len() as u64;
        let mut addr = req.addr;
        let end = req.addr + req.len;
        while addr < end {
            let stripe_index = addr / self.stripe_unit;
            let within = addr % self.stripe_unit;
            let take = (self.stripe_unit - within).min(end - addr);
            let disk_index = (stripe_index % n) as usize;
            // Physical address: which stripe row this is on the member disk,
            // plus the offset within the unit.
            let row = stripe_index / n;
            let phys_addr = row * self.stripe_unit + within;
            pieces.push((
                disk_index,
                DiskRequest {
                    addr: phys_addr,
                    len: take,
                    kind: req.kind,
                },
            ));
            addr += take;
        }
        pieces
    }
}

impl BlockDevice for StripeSet {
    /// Submit a logical request: every piece joins its *own member's* FIFO
    /// queue at `now`, so pieces of different logical requests interleave
    /// per spindle; the logical completion is the latest piece completion.
    /// This is already queued-submission semantics — [`StripeSet`] never
    /// chains on the set-wide [`BlockDevice::free_at`]; only callers that
    /// submit each request at the previous one's completion do.
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> SimTime {
        let mut done = now;
        for (disk_index, piece) in self.split(req) {
            let piece_done = self.disks[disk_index].submit(now, piece);
            done = done.max(piece_done);
        }
        done
    }

    fn stats(&self) -> DeviceStats {
        // O(width): each member merge combines totals directly.
        let mut total = DeviceStats::new();
        for d in &self.disks {
            total.merge(&d.stats());
        }
        total
    }

    fn spindle_stats(&self) -> Vec<SpindleStats> {
        self.disks.iter().flat_map(|d| d.spindle_stats()).collect()
    }

    fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
    }

    fn free_at(&self) -> SimTime {
        self.disks
            .iter()
            .map(|d| d.free_at())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn describe(&self) -> String {
        format!(
            "{} x {} stripe ({}K unit)",
            self.disks.len(),
            self.disks[0].describe(),
            self.stripe_unit / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_simcore::Duration;

    #[test]
    fn split_respects_stripe_boundaries() {
        let set = StripeSet::new(3, DiskParams::rz26(), 64 * 1024);
        // A 128 KB request starting half-way into stripe unit 0.
        let pieces = set.split(DiskRequest::write(32 * 1024, 128 * 1024));
        assert_eq!(pieces.len(), 3);
        let total: u64 = pieces.iter().map(|(_, p)| p.len).sum();
        assert_eq!(total, 128 * 1024);
        // First piece fills the rest of unit 0 on disk 0.
        assert_eq!(pieces[0].0, 0);
        assert_eq!(pieces[0].1.len, 32 * 1024);
        // Second piece is the whole of unit 1 on disk 1.
        assert_eq!(pieces[1].0, 1);
        assert_eq!(pieces[1].1.len, 64 * 1024);
        // Third piece is the first half of unit 2 on disk 2.
        assert_eq!(pieces[2].0, 2);
        assert_eq!(pieces[2].1.len, 32 * 1024);
    }

    #[test]
    fn small_request_touches_one_disk() {
        let set = StripeSet::three_rz26();
        let pieces = set.split(DiskRequest::write(8192, 8192));
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].0, 0);
    }

    #[test]
    fn round_robin_distribution() {
        let set = StripeSet::new(3, DiskParams::rz26(), 64 * 1024);
        let mut seen = Vec::new();
        for unit in 0..6u64 {
            let pieces = set.split(DiskRequest::write(unit * 64 * 1024, 1024));
            seen.push(pieces[0].0);
        }
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn striping_beats_single_disk_for_large_sequential_io() {
        let mut single = Disk::rz26();
        let mut striped = StripeSet::three_rz26();
        let total = 4 * 1024 * 1024u64;
        let chunk = 192 * 1024u64; // spans all three disks each time
        let mut now_single = SimTime::ZERO;
        let mut now_striped = SimTime::ZERO;
        let mut addr = 0;
        while addr < total {
            now_single = single.submit(now_single, DiskRequest::write(addr, chunk));
            now_striped = striped.submit(now_striped, DiskRequest::write(addr, chunk));
            addr += chunk;
        }
        assert!(
            now_striped.as_secs_f64() < now_single.as_secs_f64() * 0.6,
            "striping gave {:.3}s vs single {:.3}s",
            now_striped.as_secs_f64(),
            now_single.as_secs_f64()
        );
    }

    #[test]
    fn stats_aggregate_member_transactions() {
        let mut set = StripeSet::three_rz26();
        set.submit(SimTime::ZERO, DiskRequest::write(0, 192 * 1024));
        let stats = set.stats();
        // One logical request, three member transactions.
        assert_eq!(stats.transfers.events(), 3);
        assert_eq!(stats.transfers.bytes(), 192 * 1024);
        assert!(stats.busy.busy_time() > Duration::ZERO);
        set.reset_stats();
        assert_eq!(set.stats().transfers.events(), 0);
    }

    #[test]
    fn batch_submission_interleaves_distinct_requests_across_spindles() {
        // Three 64 KB requests, one per stripe unit, land on three different
        // members.  Chained on each other's completions they serialise;
        // enqueued as a batch they run concurrently.
        let reqs = [
            DiskRequest::write(0, 64 * 1024),
            DiskRequest::write(64 * 1024, 64 * 1024),
            DiskRequest::write(128 * 1024, 64 * 1024),
        ];
        let mut chained = StripeSet::three_rz26();
        let mut clock = SimTime::ZERO;
        for &r in &reqs {
            clock = chained.submit(clock, r);
        }
        let mut batched = StripeSet::three_rz26();
        let completions = batched.submit_batch(SimTime::ZERO, &reqs);
        let batch_done = completions.iter().copied().max().unwrap();
        assert!(
            batch_done.as_secs_f64() < clock.as_secs_f64() * 0.6,
            "batched {batch_done} vs chained {clock}"
        );
        // Same physical work either way: identical per-spindle totals.
        let a = chained.spindle_stats();
        let b = batched.spindle_stats();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.stats.transfers.events(), y.stats.transfers.events());
            assert_eq!(x.stats.transfers.bytes(), y.stats.transfers.bytes());
        }
        // All three members were driven.
        assert!(b.iter().all(|s| s.stats.transfers.events() == 1));
    }

    #[test]
    fn member_free_at_exposes_per_spindle_clocks() {
        let mut set = StripeSet::three_rz26();
        set.submit_at(SimTime::ZERO, DiskRequest::write(0, 1024));
        assert!(set.member_free_at(0).unwrap() > SimTime::ZERO);
        assert_eq!(set.member_free_at(1).unwrap(), SimTime::ZERO);
        assert!(set.member_free_at(3).is_none());
    }

    #[test]
    fn describe_mentions_width_and_unit() {
        let set = StripeSet::three_rz26();
        assert_eq!(set.width(), 3);
        assert_eq!(set.stripe_unit(), 64 * 1024);
        let d = set.describe();
        assert!(d.contains("3 x RZ26"));
        assert!(d.contains("64K"));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_width_panics() {
        let _ = StripeSet::new(0, DiskParams::rz26(), 64 * 1024);
    }
}
