//! Offline stub of `serde_derive`.
//!
//! The container this repository builds in has no access to crates.io, so the
//! real `serde` cannot be vendored.  The simulation only ever *annotates*
//! types with `#[derive(serde::Serialize, serde::Deserialize)]`; the handful
//! of places that actually emit JSON do so by hand (see
//! `wg_workload::results::json`).  These derive macros therefore expand to
//! nothing: the annotation stays source-compatible with the real serde, and
//! swapping the stub for the real crate later is a one-line Cargo.toml change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
