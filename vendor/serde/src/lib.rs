//! Offline stub of `serde`.
//!
//! See `vendor/serde_derive` for why this exists.  [`Serialize`] and
//! [`Deserialize`] are blanket-implemented marker traits so that generic
//! bounds written against the real serde keep compiling; the derive macros
//! are re-exported no-ops.  Nothing here can actually serialize a value —
//! JSON emission in this workspace is hand-rolled where it is needed.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
