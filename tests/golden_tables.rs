//! Golden-output test: the rendered Table 1 (at a reduced file size) must be
//! byte-identical to the checked-in snapshot.
//!
//! The zero-copy write datapath is a pure wall-clock optimisation; it must
//! not perturb a single simulated number.  This test pins every rendered cell
//! of a full Table 1 sweep (both policies, all five biod columns) so any
//! accidental behaviour change in the payload representation, the wire-size
//! accounting or the event loop shows up as a diff against the snapshot
//! captured before the refactor.
//!
//! To regenerate after an *intentional* simulation change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release -p wg-apps --test golden_tables
//! ```

use wg_bench::{run_table, run_table_with, table_spec};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/table1_1mb.txt"
);
const FILE_SIZE: u64 = 1024 * 1024;

#[test]
fn table1_reduced_render_matches_golden() {
    let spec = table_spec(1).expect("table 1 exists");
    let rendered = run_table(spec, FILE_SIZE).render();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "Table 1 render drifted from the golden snapshot; if the simulation \
         change is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn explicitly_serial_server_matches_golden_exactly() {
    // The sharded request path, the multi-core CPU model and the pipelined
    // storage stack must all collapse to the paper's machine when explicitly
    // configured down to one shard, one core and the serial driver: every
    // rendered cell of Table 1 stays byte-identical to the golden snapshot,
    // so neither the sharding nor the I/O-overlap refactor can have moved a
    // single simulated number.
    let spec = table_spec(1).expect("table 1 exists");
    let rendered = run_table_with(spec, FILE_SIZE, |server_config| {
        server_config.shards = 1;
        server_config.cores = 1;
        server_config.io_overlap = false;
    })
    .render();
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "a shards=1, cores=1, io_overlap=off server no longer reproduces \
         the paper's numbers"
    );
}
