//! Zero-copy datapath probes.
//!
//! The client's synthetic writes are fill-pattern [`wg_nfsproto::Payload`]s.
//! If any stage of the datapath — client send, socket buffer, duplicate
//! request cache, gathering queue, UFS block cache — falls back to real
//! bytes, it must call `Payload::materialize`, which bumps a global counter.
//! These tests pin the counter at zero across whole simulated runs, which is
//! the "no per-write payload byte allocation" guarantee of the zero-copy
//! refactor.
//!
//! Each probe lives in this dedicated integration binary so no unrelated
//! test in the same process can touch the counter concurrently.

use wg_nfsproto::payload::materialize_count;
use wg_server::WritePolicy;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

#[test]
fn file_copy_never_materializes_fill_payloads() {
    let before = materialize_count();
    // Every policy exercises a different server path (sync commit, delayed
    // data + gathered flush, first-write latency window, async): none may
    // expand a fill payload into bytes.
    for policy in [
        WritePolicy::Standard,
        WritePolicy::Gathering,
        WritePolicy::FirstWriteLatency,
        WritePolicy::DangerousAsync,
    ] {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 15, policy).with_file_size(1024 * 1024),
        );
        let result = system.run();
        assert!(
            result.client_write_kb_per_sec > 0.0,
            "{policy:?} produced no throughput"
        );
    }
    assert_eq!(
        materialize_count(),
        before,
        "a fill payload was materialised somewhere on the write datapath"
    );
}

#[test]
fn fill_payload_data_still_lands_in_the_filesystem() {
    // Zero materialisation must not mean zero data: the fill patterns have to
    // be readable back out of the UFS block cache, byte for byte.
    let before = materialize_count();
    let mut system = FileCopySystem::new(
        ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
            .with_file_size(256 * 1024),
    );
    system.run();
    assert_eq!(materialize_count(), before);
    let mut fs = system.server().fs().clone();
    let root = fs.root();
    let ino = fs.lookup(root, "copy-target").unwrap();
    for block in [0u64, 7, 31] {
        let data = fs.read(ino, block * 8192, 8192).unwrap().data;
        assert!(
            data.iter().all(|&b| b == block as u8),
            "block {block} corrupted"
        );
    }
}
