//! Zero-copy datapath probes.
//!
//! The client's synthetic writes are fill-pattern [`wg_nfsproto::Payload`]s.
//! If any stage of the datapath — client send, socket buffer, duplicate
//! request cache, gathering queue, UFS block cache — falls back to real
//! bytes, it must call `Payload::materialize`, which bumps a global counter.
//! These tests pin the counter at zero across whole simulated runs, which is
//! the "no per-write payload byte allocation" guarantee of the zero-copy
//! refactor.
//!
//! Each probe lives in this dedicated integration binary so no unrelated
//! test in the same process can touch the counter concurrently.

use wg_nfsproto::payload::materialize_count;
use wg_nfsproto::{NfsCall, NfsCallBody, NfsReply, NfsReplyBody, Payload, ReadArgs, StatusReply};
use wg_nfsproto::{WriteArgs, Xid};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, WritePolicy};
use wg_simcore::SimTime;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

/// Drive a server until its event queue drains, collecting replies.
fn run_server(server: &mut NfsServer, inputs: Vec<(SimTime, NfsCall)>) -> Vec<NfsReply> {
    let mut queue = wg_simcore::EventQueue::new();
    for (t, call) in inputs {
        let wire_size = call.wire_size();
        queue.schedule_at(
            t,
            ServerInput::Datagram {
                client: 0,
                call,
                wire_size,
                fragments: 2,
            },
        );
    }
    let mut replies = Vec::new();
    while let Some((t, input)) = queue.pop() {
        for action in server.handle(t, input) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    queue.schedule_at(at, ServerInput::Wakeup { token });
                }
                ServerAction::Reply { reply, .. } => replies.push(reply),
            }
        }
    }
    replies
}

#[test]
fn read_back_never_materializes_fill_payloads() {
    // Write a file through the gathering server, then read every block back
    // N times: the whole round trip — UFS block cache, READ handler, reply,
    // duplicate request cache — must hand the fill patterns through without
    // expanding a single one into bytes.
    const BLOCKS: u64 = 64;
    const ROUNDS: u32 = 3;
    let before = materialize_count();
    let mut server = NfsServer::new(ServerConfig::gathering());
    let root = server.fs().root();
    let ino = server.fs_mut().create(root, "readback", 0o644, 0).unwrap();
    let fh = server.handle_for_ino(ino).unwrap();

    let writes: Vec<(SimTime, NfsCall)> = (0..BLOCKS)
        .map(|b| {
            let call = NfsCall::new(
                Xid(0x100 + b as u32),
                NfsCallBody::Write(WriteArgs::fill(fh, (b * 8192) as u32, b as u8, 8192)),
            );
            (SimTime::from_millis(b), call)
        })
        .collect();
    let write_replies = run_server(&mut server, writes);
    assert_eq!(write_replies.len() as u64, BLOCKS);
    assert!(write_replies.iter().all(|r| r.body.is_ok()));

    let mut reads = Vec::new();
    for round in 0..ROUNDS {
        for b in 0..BLOCKS {
            let xid = Xid(0x9000 + round * BLOCKS as u32 + b as u32);
            let call = NfsCall::new(
                xid,
                NfsCallBody::Read(ReadArgs {
                    file: fh,
                    offset: (b * 8192) as u32,
                    count: 8192,
                    totalcount: 0,
                }),
            );
            reads.push((SimTime::from_millis(2_000 + (round as u64) * 500 + b), call));
        }
    }
    let replies = run_server(&mut server, reads);
    assert_eq!(replies.len() as u64, BLOCKS * ROUNDS as u64);
    let check_read_replies = |replies: &[NfsReply]| {
        for reply in replies {
            let block = (reply.xid.0 - 0x9000) % BLOCKS as u32;
            match &reply.body {
                NfsReplyBody::Read(StatusReply::Ok(ok)) => {
                    assert_eq!(ok.data, Payload::fill(block as u8, 8192), "block {block}");
                    assert!(
                        matches!(ok.data, Payload::Fill { .. }),
                        "block {block} came back as real bytes, not the pattern"
                    );
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    };
    check_read_replies(&replies);

    // Retransmit the last round's xids: the duplicate request cache must
    // replay its Arc-shared READ replies — correct payloads, no re-execution,
    // still no materialisation.
    let duplicates_before = server.stats().duplicate_requests;
    let reads_before = server.fs().counters().reads;
    let retransmits: Vec<(SimTime, NfsCall)> = (0..BLOCKS)
        .map(|b| {
            let xid = Xid(0x9000 + (ROUNDS - 1) * BLOCKS as u32 + b as u32);
            let call = NfsCall::new(
                xid,
                NfsCallBody::Read(ReadArgs {
                    file: fh,
                    offset: (b * 8192) as u32,
                    count: 8192,
                    totalcount: 0,
                }),
            );
            (SimTime::from_millis(10_000 + b), call)
        })
        .collect();
    let replays = run_server(&mut server, retransmits);
    assert_eq!(replays.len() as u64, BLOCKS);
    check_read_replies(&replays);
    assert_eq!(
        server.stats().duplicate_requests - duplicates_before,
        BLOCKS,
        "retransmitted READs were not recognised as duplicates"
    );
    assert_eq!(
        server.fs().counters().reads,
        reads_before,
        "a duplicate READ was re-executed instead of replayed from the cache"
    );

    assert_eq!(
        materialize_count(),
        before,
        "a fill payload was materialised somewhere on the read datapath"
    );
}

#[test]
fn file_copy_never_materializes_fill_payloads() {
    let before = materialize_count();
    // Every policy exercises a different server path (sync commit, delayed
    // data + gathered flush, first-write latency window, async): none may
    // expand a fill payload into bytes.
    for policy in [
        WritePolicy::Standard,
        WritePolicy::Gathering,
        WritePolicy::FirstWriteLatency,
        WritePolicy::DangerousAsync,
    ] {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 15, policy).with_file_size(1024 * 1024),
        );
        let result = system.run();
        assert!(
            result.client_write_kb_per_sec > 0.0,
            "{policy:?} produced no throughput"
        );
    }
    assert_eq!(
        materialize_count(),
        before,
        "a fill payload was materialised somewhere on the write datapath"
    );
}

#[test]
fn fill_payload_data_still_lands_in_the_filesystem() {
    // Zero materialisation must not mean zero data: the fill patterns have to
    // be readable back out of the UFS block cache, byte for byte.
    let before = materialize_count();
    let mut system = FileCopySystem::new(
        ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
            .with_file_size(256 * 1024),
    );
    system.run();
    assert_eq!(materialize_count(), before);
    let mut fs = system.server().fs().clone();
    let root = fs.root();
    let ino = fs.lookup(root, "copy-target").unwrap();
    for block in [0u64, 7, 31] {
        let data = fs.read(ino, block * 8192, 8192).unwrap().to_vec();
        assert!(
            data.iter().all(|&b| b == block as u8),
            "block {block} corrupted"
        );
    }
}
