//! Multi-client SFS scale-out: the contracts behind the `"sfs_scale"` bench
//! cells.
//!
//! * per-seed determinism across thread-pool schedules — a parallel sweep is
//!   bit-identical to the serial runner,
//! * per-client fairness (Jain's index over per-stream achieved throughput),
//! * zero payload materialisations across a mixed READ/WRITE sweep point,
//! * the knee shift itself — the scaled stack (per-client LANs, shards,
//!   cores, overlapped I/O, inode groups, read caching) beats the
//!   single-generator baseline at the same offered load,
//! * and the hot-loop allocation contract: steady-state op generation
//!   (LOOKUP / READ / GETATTR / WRITE bursts) performs **zero** heap
//!   allocations, pinned by a counting global allocator, not by eyeball.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use wg_nfsproto::payload::materialize_count;
use wg_server::WritePolicy;
use wg_simcore::{Duration, SimTime};
use wg_workload::sfs::SfsSystem;
use wg_workload::{SfsConfig, SfsMix, SfsSweep};

/// A pass-through allocator that counts every allocation the process makes.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so the probe below can only
/// measure its own window if no sibling test is allocating concurrently —
/// libtest runs this binary's tests on parallel threads.  Every test takes
/// this lock, serialising the whole file (it runs in well under a second).
static SERIAL: Mutex<()> = Mutex::new(());

fn serialised() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn quick(load: f64) -> SfsConfig {
    let mut cfg = SfsConfig::figure2(load, WritePolicy::Gathering);
    cfg.duration = Duration::from_secs(4);
    cfg.file_count = 40;
    cfg.file_size = 64 * 1024;
    cfg
}

fn quick_scaled(load: f64, clients: usize) -> SfsConfig {
    let mut cfg = SfsConfig::scaled(load, WritePolicy::Gathering, clients);
    cfg.duration = Duration::from_secs(4);
    cfg.file_count = 40;
    cfg.file_size = 64 * 1024;
    cfg
}

#[test]
fn steady_state_generation_performs_no_heap_allocation() {
    let _serial = serialised();
    // A mix of only the allocation-free operations: LOOKUP, READ, GETATTR
    // and WRITE bursts.  CREATE legitimately mints a name (it must) and is
    // excluded, exactly as the hot-loop contract states.
    let mut cfg = quick_scaled(1000.0, 2);
    cfg.mix = SfsMix::steady_state();
    let mut system = SfsSystem::new(cfg);
    let now = SimTime::ZERO + Duration::from_millis(1);
    // Warm up: first bursts grow the burst queue to its steady capacity.
    for client in 0..2 {
        for _ in 0..2000 {
            let _ = system.generate_one(now, client);
        }
    }
    let mints_before = system.name_mints();
    let before = allocations();
    for client in 0..2 {
        for _ in 0..10_000 {
            let call = system.generate_one(now, client);
            std::hint::black_box(&call);
        }
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state op generation allocated {delta} times over 20k ops"
    );
    // The generator-level counter agrees: nothing was minted either.
    assert_eq!(system.name_mints(), mints_before);
}

#[test]
fn create_heavy_generation_allocates_only_name_mints() {
    let _serial = serialised();
    // With CREATEs back in the mix the only allocations are name mints —
    // the generator-level counter tracks every one of them.
    let mut system = SfsSystem::new(quick(500.0));
    let now = SimTime::ZERO + Duration::from_millis(1);
    for _ in 0..500 {
        let _ = system.generate_one(now, 0);
    }
    assert!(
        system.name_mints() > 0,
        "the LADDIS mix draws CREATEs, which mint names"
    );
}

#[test]
fn parallel_sweep_is_bit_identical_across_schedules() {
    let _serial = serialised();
    let sweep = SfsSweep::new(quick_scaled(0.0, 3));
    let loads = [150.0, 300.0, 450.0, 600.0, 750.0, 900.0, 1050.0, 1200.0];
    let serial = sweep.run(&loads);
    for threads in [2, 4, 8] {
        let parallel = sweep.run_parallel(&loads, threads);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.offered_ops_per_sec, p.offered_ops_per_sec);
            assert_eq!(s.achieved_ops_per_sec, p.achieved_ops_per_sec);
            assert_eq!(s.avg_latency_ms, p.avg_latency_ms);
            assert_eq!(s.server_cpu_percent, p.server_cpu_percent);
        }
    }
}

#[test]
fn multi_client_point_is_fair_and_materialisation_free() {
    let _serial = serialised();
    let before = materialize_count();
    let sweep = SfsSweep::new(quick_scaled(0.0, 4));
    let stats = sweep.run_stats(&[800.0]);
    assert_eq!(
        materialize_count() - before,
        0,
        "a payload was materialised"
    );
    let point = &stats[0];
    assert_eq!(point.materializations, 0);
    assert_eq!(point.evicted_in_progress, 0);
    assert_eq!(point.per_client_achieved_ops.len(), 4);
    assert!(
        point.per_client_achieved_ops.iter().all(|&ops| ops > 0.0),
        "every stream carried load: {:?}",
        point.per_client_achieved_ops
    );
    assert!(
        point.fairness > 0.9,
        "per-client fairness {} (Jain)",
        point.fairness
    );
}

#[test]
fn scaled_stack_beats_the_single_client_baseline_at_heavy_load() {
    let _serial = serialised();
    // A reduced-duration rendition of the recorded knee shift: at the same
    // heavy offered load the full scaled stack completes more operations at
    // lower average latency than the single-generator baseline.
    let load = 1600.0;
    let baseline = SfsSystem::new(quick(load)).run();
    let scaled = SfsSystem::new(quick_scaled(load, 4)).run();
    assert!(
        scaled.achieved_ops_per_sec > baseline.achieved_ops_per_sec * 1.3,
        "scaled {:.0} ops/s vs baseline {:.0} ops/s",
        scaled.achieved_ops_per_sec,
        baseline.achieved_ops_per_sec
    );
    assert!(
        scaled.avg_latency_ms < baseline.avg_latency_ms,
        "scaled latency {:.1} ms vs baseline {:.1} ms",
        scaled.avg_latency_ms,
        baseline.avg_latency_ms
    );
}

#[test]
fn partitioned_event_loops_are_bit_identical_to_serial() {
    let _serial = serialised();
    // The partitioned simulation core re-runs the scaled stack on 2/4/8
    // cooperating event loops; every recorded field — the figure point, the
    // per-client breakdown, the health counters — must match the serial run
    // bit for bit, and nothing may be clamped into the past.
    let config = quick_scaled(0.0, 4);
    let serial = SfsSweep::new(config.clone()).run_stats(&[900.0]);
    for threads in [2, 4, 8] {
        let par = SfsSweep::new(config.clone().with_sim_threads(threads)).run_stats(&[900.0]);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "sim_threads={threads} diverged from the serial event loop"
        );
        assert_eq!(par[0].clamped_past, 0);
    }
}

#[test]
fn partitioned_idle_segments_reach_the_horizon_without_stalling() {
    let _serial = serialised();
    // A trickle load over per-client LANs: spokes sit idle (bound at
    // infinity) for most of the run and the last arrivals land against the
    // duration boundary — the degenerate horizon cases of the conservative
    // protocol.  The run must terminate and still match the serial loop.
    let config = quick_scaled(0.0, 4);
    let serial = SfsSweep::new(config.clone()).run_stats(&[8.0]);
    for threads in [2, 4] {
        let par = SfsSweep::new(config.clone().with_sim_threads(threads)).run_stats(&[8.0]);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "sim_threads={threads} diverged on the near-idle topology"
        );
        assert_eq!(par[0].clamped_past, 0);
    }
}

#[test]
fn scaled_run_keeps_the_dupcache_and_scratch_contracts() {
    let _serial = serialised();
    let mut system = SfsSystem::new(quick_scaled(1200.0, 4));
    system.run();
    assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
    // Scratch offsets never cross the rotation limit (satellite: the old
    // unbounded append stream wrapped `offset as u32` past the UFS cap).
    assert!(system.max_scratch_offset() <= 8 * 1024 * 1024);
    assert_eq!(system.clients(), 4);
    assert_eq!(system.lan_segments(), 4);
}
