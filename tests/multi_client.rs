//! Multi-client scale-out integrity.
//!
//! N clients share one medium and one server, each copying its own byte
//! budget into its own segment files with a client-specific salted fill
//! pattern.  These tests pin the contract of `MultiClientSystem`: every
//! client's acknowledged bytes are on disk under its own salt (no
//! cross-client bleed, no mis-routed replies), incomplete clients are loud,
//! symmetric clients are treated fairly, and the whole run stays on the
//! zero-copy datapath.

use wg_nfsproto::payload::materialize_count;
use wg_server::WritePolicy;
use wg_workload::{MultiClientConfig, MultiClientSystem, NetworkKind};

const MB: u64 = 1024 * 1024;

#[test]
fn every_clients_acked_bytes_are_on_disk_with_no_cross_client_bleed() {
    let before = materialize_count();
    // Four clients, two segment files each (2 MB budget over a 1 MB file
    // limit), so the segment-rollover path is exercised too.
    let mut system = MultiClientSystem::new(
        MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
            .with_bytes_per_client(2 * MB)
            .with_file_limit(MB),
    );
    let result = system.run();
    assert!(result.completed, "a client failed to finish");
    assert_eq!(result.clients.len(), 4);
    assert_eq!(result.total_bytes_acked, 4 * 2 * MB);
    for (i, client) in result.clients.iter().enumerate() {
        assert!(client.completed, "client {i} incomplete");
        assert_eq!(client.retransmissions, 0, "client {i} retransmitted");
        assert!(client.client_write_kb_per_sec > 0.0);
    }
    // Every block of every client's files carries that client's salt — the
    // definitive no-bleed check.
    system.verify_on_disk().expect("per-client data intact");
    // Stable-storage contract still holds with multiple writers.
    assert_eq!(system.server().uncommitted_bytes(), 0);
    // Identical clients must get near-identical service.
    assert!(
        result.fairness > 0.9,
        "symmetric clients served unfairly: {}",
        result.fairness
    );
    // The entire multi-client run stayed on the zero-copy datapath.
    assert_eq!(
        materialize_count(),
        before,
        "a fill payload was materialised during the multi-client run"
    );
}

#[test]
fn sharded_server_keeps_zero_copy_and_per_client_integrity() {
    // The same contract as the monolithic run, against a sharded server: four
    // clients on four private LANs, four request-path shards, two cores.
    let before = materialize_count();
    let mut system = MultiClientSystem::new(
        MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
            .with_bytes_per_client(2 * MB)
            .with_file_limit(MB)
            .with_shards(4)
            .with_cores(2)
            .with_per_client_lans(true),
    );
    assert_eq!(system.server().shard_count(), 4);
    let result = system.run();
    assert!(result.completed, "a client failed to finish");
    assert_eq!(result.total_bytes_acked, 4 * 2 * MB);
    for (i, client) in result.clients.iter().enumerate() {
        assert!(client.completed, "client {i} incomplete");
        assert_eq!(client.retransmissions, 0, "client {i} retransmitted");
    }
    // Every block of every client's files carries that client's salt, so
    // routing by inode across shards never crossed streams.
    system.verify_on_disk().expect("per-client data intact");
    assert_eq!(system.server().uncommitted_bytes(), 0);
    // No InProgress dupcache entry was sacrificed anywhere (§6.9).
    assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
    assert!(
        result.fairness > 0.9,
        "symmetric clients served unfairly: {}",
        result.fairness
    );
    // The sharded datapath is still zero-copy end to end.
    assert_eq!(
        materialize_count(),
        before,
        "a fill payload was materialised during the sharded multi-client run"
    );
}

#[test]
fn contention_shows_up_per_client_but_not_in_the_aggregate() {
    let run = |clients: usize| {
        MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, clients, 4, WritePolicy::Gathering)
                .with_bytes_per_client(MB),
        )
        .run()
    };
    let solo = run(1);
    let four = run(4);
    assert!(solo.completed && four.completed);
    // Sharing one disk and one wire, each of the four clients is slower than
    // the lone client was...
    assert!(
        four.max_client_kb_per_sec < solo.clients[0].client_write_kb_per_sec,
        "four-way contention did not slow any client ({:.0} vs solo {:.0} KB/s)",
        four.max_client_kb_per_sec,
        solo.clients[0].client_write_kb_per_sec
    );
    // ...but the server gathers across clients, so aggregate throughput holds
    // up (it must not collapse below the single-client rate).
    assert!(
        four.aggregate_kb_per_sec > solo.aggregate_kb_per_sec * 0.9,
        "aggregate collapsed: 4 clients {:.0} KB/s vs 1 client {:.0} KB/s",
        four.aggregate_kb_per_sec,
        solo.aggregate_kb_per_sec
    );
}
