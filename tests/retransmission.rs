//! Retransmission and overload behaviour across the client/server boundary:
//! lost datagrams and socket-buffer overruns are recovered by the client's
//! timeout/backoff machinery, the duplicate request cache keeps re-executed
//! work correct, and the file still ends up intact.

use wg_client::{ClientAction, ClientConfig, ClientInput, FileWriterClient};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, WritePolicy};
use wg_simcore::{Duration, EventQueue, SimRng, SimTime};

enum Ev {
    Client(ClientInput),
    Server(ServerInput),
}

/// Wire the client and server together with a lossy "network" that drops a
/// fraction of datagrams in each direction and otherwise delivers after a
/// fixed delay.  Returns the client, the server and the number of datagrams
/// dropped.
fn run_lossy(
    policy: WritePolicy,
    file_size: u64,
    biods: usize,
    loss: f64,
    seed: u64,
) -> (FileWriterClient, NfsServer, u64) {
    let mut server_cfg = ServerConfig::standard();
    server_cfg.policy = policy;
    let mut server = NfsServer::new(server_cfg);
    let root = server.fs().root();
    let ino = server
        .fs_mut()
        .create(root, "lossy-target", 0o644, 0)
        .unwrap();
    let handle = server.handle_for_ino(ino).unwrap();

    let client_cfg = ClientConfig {
        biods,
        file_size,
        // Short timeouts keep the test fast while still exercising backoff.
        initial_timeout: Duration::from_millis(120),
        backoff_factor: 2.0,
        max_retransmits: 20,
        ..ClientConfig::default()
    };
    let mut client = FileWriterClient::new(client_cfg, handle);

    let mut rng = SimRng::seed_from(seed);
    let delay = Duration::from_millis(1);
    let mut dropped = 0u64;
    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule_at(SimTime::ZERO, Ev::Client(ClientInput::Start));
    let mut guard = 0u64;
    while let Some((t, ev)) = queue.pop() {
        guard += 1;
        assert!(guard < 5_000_000, "runaway lossy simulation");
        match ev {
            Ev::Client(input) => {
                for action in client.handle(t, input) {
                    match action {
                        ClientAction::Send { at, call } => {
                            if rng.chance(loss) {
                                dropped += 1;
                                continue;
                            }
                            let size = call.wire_size();
                            queue.schedule_at(
                                at + delay,
                                Ev::Server(ServerInput::Datagram {
                                    client: 0,
                                    call,
                                    wire_size: size,
                                    fragments: 2,
                                }),
                            );
                        }
                        ClientAction::Wakeup { at, token } => {
                            queue.schedule_at(at, Ev::Client(ClientInput::Wakeup { token }))
                        }
                        ClientAction::Completed { .. } => {}
                    }
                }
            }
            Ev::Server(input) => {
                for action in server.handle(t, input) {
                    match action {
                        ServerAction::Wakeup { at, token } => {
                            queue.schedule_at(at, Ev::Server(ServerInput::Wakeup { token }))
                        }
                        ServerAction::Reply { at, reply, .. } => {
                            if rng.chance(loss) {
                                dropped += 1;
                                continue;
                            }
                            queue.schedule_at(at + delay, Ev::Client(ClientInput::Reply(reply)));
                        }
                    }
                }
            }
        }
        if client.is_done() && queue.is_empty() {
            break;
        }
    }
    (client, server, dropped)
}

#[test]
fn lossy_network_is_survived_by_retransmission() {
    for policy in [WritePolicy::Standard, WritePolicy::Gathering] {
        let (client, server, dropped) = run_lossy(policy, 256 * 1024, 4, 0.10, 42);
        assert!(client.is_done());
        assert!(dropped > 0, "the loss injector never fired");
        let stats = client.stats();
        assert!(
            stats.retransmissions > 0,
            "{policy:?}: no retransmissions despite loss"
        );
        assert_eq!(
            stats.bytes_acked,
            256 * 1024,
            "{policy:?}: data went missing"
        );
        // The file is complete and correct on the server despite duplicates
        // and losses.
        let mut fs = server.fs().clone();
        let root = fs.root();
        let ino = fs.lookup(root, "lossy-target").unwrap();
        assert_eq!(fs.getattr(ino).unwrap().size, 256 * 1024);
        for block in 0..(256 / 8) as u64 {
            let data = fs.read(ino, block * 8192, 8192).unwrap().to_vec();
            assert!(
                data.iter().all(|&b| b == block as u8),
                "block {block} corrupt"
            );
        }
        assert_eq!(server.uncommitted_bytes(), 0);
    }
}

#[test]
fn duplicate_requests_from_retransmission_are_absorbed() {
    let (client, server, _) = run_lossy(WritePolicy::Gathering, 128 * 1024, 2, 0.20, 7);
    assert!(client.is_done());
    // With 20% loss and a small window, retransmissions definitely happened;
    // some of them raced the original and were recognised as duplicates.
    assert!(client.stats().retransmissions > 0);
    let dupes = server.stats().duplicate_requests;
    let replies = server.stats().replies_sent;
    // Every original request was answered exactly once per distinct xid the
    // server executed: replies may exceed the block count only because cached
    // replies were replayed to late retransmissions, never because a write was
    // executed twice.
    assert_eq!(
        server
            .fs()
            .clone()
            .getattr(
                server
                    .fs()
                    .clone()
                    .lookup(server.fs().root(), "lossy-target")
                    .unwrap()
            )
            .unwrap()
            .size,
        128 * 1024
    );
    assert!(replies >= 16, "at least one reply per block");
    let _ = dupes;
}

#[test]
fn loss_free_runs_never_retransmit() {
    let (client, _, dropped) = run_lossy(WritePolicy::Gathering, 128 * 1024, 4, 0.0, 1);
    assert_eq!(dropped, 0);
    assert_eq!(client.stats().retransmissions, 0);
    assert_eq!(client.stats().bytes_acked, 128 * 1024);
}

#[test]
fn tiny_socket_buffer_forces_drops_and_recovery() {
    // A server with a pathologically small socket buffer drops bursts; the
    // client's retransmission recovers them and the copy still completes.
    let mut server_cfg = ServerConfig::standard();
    server_cfg.policy = WritePolicy::Gathering;
    server_cfg.socket_buffer_bytes = 18_000; // two 8 KB writes at most
    server_cfg.nfsds = 1;
    let mut server = NfsServer::new(server_cfg);
    let root = server.fs().root();
    let ino = server.fs_mut().create(root, "t", 0o644, 0).unwrap();
    let handle = server.handle_for_ino(ino).unwrap();
    let client_cfg = ClientConfig {
        biods: 8,
        file_size: 256 * 1024,
        initial_timeout: Duration::from_millis(150),
        ..ClientConfig::default()
    };
    let mut client = FileWriterClient::new(client_cfg, handle);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule_at(SimTime::ZERO, Ev::Client(ClientInput::Start));
    while let Some((t, ev)) = queue.pop() {
        match ev {
            Ev::Client(input) => {
                for action in client.handle(t, input) {
                    match action {
                        ClientAction::Send { at, call } => {
                            let size = call.wire_size();
                            queue.schedule_at(
                                at + Duration::from_micros(700),
                                Ev::Server(ServerInput::Datagram {
                                    client: 0,
                                    call,
                                    wire_size: size,
                                    fragments: 2,
                                }),
                            );
                        }
                        ClientAction::Wakeup { at, token } => {
                            queue.schedule_at(at, Ev::Client(ClientInput::Wakeup { token }))
                        }
                        ClientAction::Completed { .. } => {}
                    }
                }
            }
            Ev::Server(input) => {
                for action in server.handle(t, input) {
                    match action {
                        ServerAction::Wakeup { at, token } => {
                            queue.schedule_at(at, Ev::Server(ServerInput::Wakeup { token }))
                        }
                        ServerAction::Reply { at, reply, .. } => queue.schedule_at(
                            at + Duration::from_micros(700),
                            Ev::Client(ClientInput::Reply(reply)),
                        ),
                    }
                }
            }
        }
        if client.is_done() && queue.is_empty() {
            break;
        }
    }
    assert!(client.is_done());
    assert!(
        server.socket_drops() > 0,
        "the tiny buffer never overflowed"
    );
    assert!(client.stats().retransmissions > 0);
    assert_eq!(client.stats().bytes_acked, 256 * 1024);
    assert_eq!(server.uncommitted_bytes(), 0);
}

#[test]
fn retransmitted_state_ops_hit_the_dupcache_not_the_state_table() {
    // Lock and renew traffic rides the same duplicate-request cache as
    // writes, sharded by client id rather than by file.  A retransmitted
    // LOCK must be absorbed by the cache (in-progress drop or cached
    // replay), never re-executed against the state table — and even if one
    // slipped past, strict seqid monotonicity would refuse it.
    use wg_nfsproto::{LockArgs, NfsCall, NfsCallBody, RenewArgs, WriteArgs, Xid};

    let cfg = ServerConfig::gathering()
        .with_nfsds(4)
        .with_shards(4)
        .with_leases(true);
    let mut server = NfsServer::new(cfg);
    let root = server.fs().root();
    // Pad the inode allocator so the locked file's inode does not hash to
    // the same shard as the client's state ops: the write must gather on a
    // different nfsd or it would serialise behind the LOCK stream.
    server.fs_mut().create(root, "pad", 0o644, 0).unwrap();
    let ino = server.fs_mut().create(root, "locked", 0o644, 0).unwrap();
    let fh = server.handle_for_ino(ino).unwrap();

    const CLIENT: u32 = 7;
    assert_ne!(
        ino % 4,
        u64::from(CLIENT) % 4,
        "test precondition: write and state ops on distinct shards"
    );
    let dg = |call: NfsCall| {
        let wire = call.wire_size();
        ServerInput::Datagram {
            client: CLIENT,
            call,
            wire_size: wire,
            fragments: 2,
        }
    };
    let renew = NfsCall::new(
        Xid(10),
        NfsCallBody::Renew(RenewArgs {
            client_id: CLIENT,
            verifier: 0xBEEF,
        }),
    );
    let write = NfsCall::new(
        Xid(42),
        NfsCallBody::Write(WriteArgs::new(fh, 0, vec![3u8; 8192])),
    );
    let lock = |xid: u32, seqid: u32| {
        NfsCall::new(
            Xid(xid),
            NfsCallBody::Lock(LockArgs {
                file: fh,
                client_id: CLIENT,
                stateid: 1,
                seqid,
                offset: 0,
                count: 8192,
                reclaim: false,
            }),
        )
    };
    let ms = wg_simcore::SimTime::from_millis;
    let inputs = vec![
        // Register the lease, then park a gathered WRITE whose reply is
        // deferred through the procrastination window.
        (ms(0), dg(renew)),
        (ms(1), dg(write.clone())),
        // Retransmitted while still gathered: the InProgress entry eats it.
        (ms(3), dg(write)),
        // First LOCK, then a same-xid retransmission long after the reply
        // went out: the cached reply is replayed verbatim.
        (ms(4), dg(lock(100, 1))),
        (ms(40), dg(lock(100, 1))),
        // A stale seqid under a fresh xid slips past the dupcache; the
        // state table's monotonicity check refuses it.
        (ms(41), dg(lock(101, 1))),
        // The client's genuine next lock proceeds normally.
        (ms(42), dg(lock(102, 2))),
    ];

    let mut queue: EventQueue<ServerInput> = EventQueue::new();
    for (t, input) in inputs {
        queue.schedule_at(t, input);
    }
    let mut replies = Vec::new();
    while let Some((t, input)) = queue.pop() {
        for action in server.handle(t, input) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    queue.schedule_at(at, ServerInput::Wakeup { token });
                }
                ServerAction::Reply { at, reply, .. } => replies.push((at, reply)),
            }
        }
    }

    let by_xid = |x: u32| replies.iter().filter(|(_, r)| r.xid == Xid(x)).count();
    // The gathered write answered once; its in-window retransmit was dropped.
    assert_eq!(by_xid(42), 1, "retransmitted gathered write re-executed");
    // The first lock answered twice (original + cached replay), and the two
    // replies are byte-for-byte identical.
    assert_eq!(by_xid(100), 2);
    let bodies: Vec<_> = replies
        .iter()
        .filter(|(_, r)| r.xid == Xid(100))
        .map(|(_, r)| r.body.clone())
        .collect();
    assert_eq!(bodies[0], bodies[1], "cached lock replay diverged");
    assert_eq!(by_xid(101), 1);
    assert_eq!(by_xid(102), 1);

    // One in-progress drop (the write) + one cached replay (the lock).
    assert_eq!(server.stats().duplicate_requests, 2);
    assert_eq!(server.dupcache_evicted_in_progress(), 0);
    // The state table saw exactly two grants and refused the stale seqid;
    // the retransmissions never touched it.
    let st = server.state_stats();
    assert_eq!(st.leases_granted, 1);
    assert_eq!(st.locks_granted, 2);
    assert_eq!(st.seqid_rejections, 1);
    assert_eq!(st.grace_conflicts, 0);
    assert_eq!(st.expired_lease_writes, 0);
    assert_eq!(server.uncommitted_bytes(), 0);
}
