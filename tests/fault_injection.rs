//! The fault-injection contract, end to end.
//!
//! A `FaultPlan` crashes the server, fails the NVRAM battery, degrades the
//! disk and partitions the network — all deterministically — and after every
//! crash the recovery oracle walks what the server acknowledged: under every
//! policy that honours the NFS stable-storage rule, **no acknowledged write
//! is ever lost**, no matter what the schedule did.  Dangerous mode's losses
//! are counted and reported, never hidden.  And with no faults scheduled,
//! the entire fault layer must be invisible: a run with an empty plan is
//! bit-identical to a run that never heard of fault plans.

use wg_nfsproto::{NfsCall, NfsCallBody, WriteArgs, Xid};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, StabilityMode, WritePolicy};
use wg_simcore::{Duration, FaultKind, FaultPlan, SimTime};
use wg_workload::sfs::{SfsConfig, SfsSystem};
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

fn copy_config(policy: WritePolicy) -> ExperimentConfig {
    ExperimentConfig::new(NetworkKind::Fddi, 8, policy).with_file_size(2 * 1024 * 1024)
}

/// A crash scheduled mid-copy: early enough that every policy still has the
/// bulk of the file in flight.
fn mid_copy_crash() -> FaultPlan {
    FaultPlan::new().at(
        SimTime::ZERO + Duration::from_millis(300),
        FaultKind::ServerCrash,
    )
}

// ---------------------------------------------------------------------------
// Defaults-off: the fault layer is invisible until a plan schedules something.
// ---------------------------------------------------------------------------

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan_at_all() {
    // File copy: the same experiment with and without an (empty) fault plan
    // must produce the same result, field for field.
    let mut plain = FileCopySystem::new(copy_config(WritePolicy::Gathering));
    let mut planned =
        FileCopySystem::new(copy_config(WritePolicy::Gathering).with_fault_plan(FaultPlan::new()));
    let a = plain.run();
    let b = planned.run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(plain.events_processed(), planned.events_processed());
    assert_eq!(plain.scheduled_total(), planned.scheduled_total());

    // SFS: an empty plan plus retry knobs leaves the retry machinery fully
    // disarmed — no timers, no clones, the identical event stream.
    let mut config = SfsConfig::figure2(500.0, WritePolicy::Gathering);
    config.duration = Duration::from_secs(4);
    let mut plain = SfsSystem::new(config.clone());
    let mut planned = SfsSystem::new(
        config
            .with_fault_plan(FaultPlan::new())
            .with_loss(0.0)
            .with_retry(Duration::from_millis(100), 3),
    );
    let a = plain.run();
    let b = planned.run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(plain.counts(), planned.counts());
    assert_eq!(plain.events_processed(), planned.events_processed());
    assert_eq!(planned.retransmissions(), 0);
    assert_eq!(planned.gave_up(), 0);
}

// ---------------------------------------------------------------------------
// The recovery oracle: crash mid-copy under every safe policy.
// ---------------------------------------------------------------------------

#[test]
fn safe_policies_lose_no_acknowledged_write_across_a_crash() {
    for (label, presto, policy) in [
        ("standard", false, WritePolicy::Standard),
        ("gathering", false, WritePolicy::Gathering),
        ("presto", true, WritePolicy::Gathering),
    ] {
        let mut system = FileCopySystem::new(
            copy_config(policy)
                .with_presto(presto)
                .with_fault_plan(mid_copy_crash()),
        );
        let result = system.run();
        let stats = system.server().stats();
        assert_eq!(stats.crashes, 1, "{label}: the crash did not fire");
        // Server-side oracle: nothing the server acknowledged was volatile
        // at the moment it died.
        assert_eq!(
            stats.lost_acked_bytes, 0,
            "{label}: acknowledged write data died with the crash"
        );
        // Client-side oracle: every byte the client saw acknowledged is
        // readable from the recovered file system with the right contents.
        assert_eq!(
            system.lost_acked_bytes_on_disk(),
            0,
            "{label}: acknowledged data missing from the recovered disk"
        );
        // The copy survived: outstanding calls timed out during the outage,
        // retransmitted through the recovery window and drained.
        assert!(result.completed, "{label}: the copy never finished");
        assert_eq!(result.gave_up, 0, "{label}: a write was abandoned");
        assert!(
            result.retransmissions > 0,
            "{label}: the crash was survived without a single retransmit?"
        );
        assert_eq!(
            system.server().dupcache_evicted_in_progress(),
            0,
            "{label}: §6.9 hazard across reboot"
        );
    }
}

#[test]
fn dangerous_mode_losses_are_counted_not_hidden() {
    let mut system = FileCopySystem::new(
        copy_config(WritePolicy::DangerousAsync).with_fault_plan(mid_copy_crash()),
    );
    let result = system.run();
    let stats = system.server().stats();
    assert_eq!(stats.crashes, 1);
    // The client believes the copy succeeded — that is exactly the danger.
    assert!(result.completed);
    // Both oracles agree that acknowledged data is gone, and say how much.
    assert!(
        stats.lost_acked_bytes > 0,
        "dangerous mode crashed without losing anything acknowledged?"
    );
    assert!(system.lost_acked_bytes_on_disk() > 0);
    assert!(stats.discarded_dirty_bytes >= stats.lost_acked_bytes);
}

// ---------------------------------------------------------------------------
// Crash during writeback: the three durable write paths all hold the line,
// and uncommitted UNSTABLE data is a counted, client-recovered loss.
// ---------------------------------------------------------------------------

/// A crash early enough to catch the unstable write path with
/// UNSTABLE-acknowledged dirty pages still in the bounded cache (the
/// instant-ack cache absorbs the whole copy much faster than the synchronous
/// paths, so this fires earlier than [`mid_copy_crash`]).
fn mid_writeback_crash() -> FaultPlan {
    FaultPlan::new().at(
        SimTime::ZERO + Duration::from_millis(200),
        FaultKind::ServerCrash,
    )
}

#[test]
fn crash_during_writeback_loses_nothing_acknowledged_in_any_durable_mode() {
    // The same mid-copy crash lands while dirty data is in flight under all
    // three durability regimes of the write-path ablation: synchronous
    // writes straight to disk, NVRAM (Prestoserve) staging, and the unified
    // bounded cache with WRITE(UNSTABLE)+COMMIT.  In the unstable cell only
    // COMMIT-covered ranges count as acknowledged — and none of them may be
    // lost, because COMMIT replies only after the covered pages are clean.
    for (label, presto, cache_pages, stability) in [
        ("sync", false, 0u64, StabilityMode::Stable),
        ("nvram", true, 0, StabilityMode::Stable),
        ("unstable", false, 4096, StabilityMode::Unstable),
    ] {
        let mut system = FileCopySystem::new(
            copy_config(WritePolicy::Gathering)
                .with_presto(presto)
                .with_unified_cache(cache_pages)
                .with_stability(stability)
                .with_fault_plan(mid_writeback_crash()),
        );
        let result = system.run();
        let stats = system.server().stats();
        assert_eq!(stats.crashes, 1, "{label}: the crash did not fire");
        assert_eq!(
            stats.lost_acked_bytes, 0,
            "{label}: acknowledged write data died with the crash"
        );
        assert_eq!(
            system.lost_acked_bytes_on_disk(),
            0,
            "{label}: acknowledged data missing from the recovered disk"
        );
        assert!(result.completed, "{label}: the copy never finished");
        assert_eq!(result.gave_up, 0, "{label}: a write was abandoned");
        assert!(
            result.retransmissions > 0,
            "{label}: the crash was survived without a single retransmit?"
        );
        assert_eq!(
            system.server().uncommitted_bytes(),
            0,
            "{label}: volatile data survived the close"
        );
        assert_eq!(system.server().dupcache_evicted_in_progress(), 0, "{label}");
    }
}

#[test]
fn uncommitted_unstable_data_is_counted_and_recovered_by_the_client() {
    // The NFSv3 bargain, exercised end to end: the crash catches the
    // bounded cache with UNSTABLE-acknowledged dirty pages that no COMMIT
    // covers yet.  The server is *allowed* to drop them — but must count
    // every byte — and the client must notice via the COMMIT verifier
    // mismatch after reboot, re-send the voided ranges, and commit again,
    // so the finished file carries the full fill pattern on disk.
    let mut system = FileCopySystem::new(
        copy_config(WritePolicy::Gathering)
            .with_unified_cache(4096)
            .with_stability(StabilityMode::Unstable)
            .with_fault_plan(mid_writeback_crash()),
    );
    let result = system.run();
    let stats = system.server().stats();
    assert_eq!(stats.crashes, 1);
    assert!(stats.unstable_writes > 0, "no write ever went UNSTABLE");
    assert!(
        stats.lost_unstable_bytes > 0,
        "the crash found no uncommitted unstable data — it missed the writeback window"
    );
    // The permitted loss is never an acknowledged loss.
    assert_eq!(stats.lost_acked_bytes, 0);

    // Client-side recovery: the post-reboot COMMIT came back with a fresh
    // boot verifier, voiding the pre-crash acknowledgements.
    let client = system.client().stats();
    assert!(
        client.verifier_mismatches > 0,
        "the client never noticed the reboot"
    );
    assert!(
        client.resent_bytes > 0,
        "a verifier mismatch must re-send the voided ranges"
    );
    assert!(client.commits_sent >= 2, "recovery needs a second COMMIT");

    // And the recovery converged: the copy finished, nothing stayed
    // volatile or uncommitted, and every acknowledged range reads back
    // with the exact fill pattern.
    assert!(result.completed);
    assert_eq!(result.gave_up, 0);
    assert!(system.client().uncommitted_ranges().is_empty());
    assert_eq!(system.server().uncommitted_bytes(), 0);
    assert_eq!(system.lost_acked_bytes_on_disk(), 0);
}

// ---------------------------------------------------------------------------
// Battery failure: Prestoserve degrades to write-through, then recovers.
// ---------------------------------------------------------------------------

#[test]
fn battery_failure_degrades_but_loses_nothing() {
    let plan = FaultPlan::new().at(
        SimTime::ZERO + Duration::from_millis(200),
        FaultKind::BatteryFailure {
            repair_after: Duration::from_millis(300),
        },
    );
    let mut system = FileCopySystem::new(
        copy_config(WritePolicy::Gathering)
            .with_presto(true)
            .with_fault_plan(plan),
    );
    let result = system.run();
    let stats = system.server().stats();
    assert_eq!(stats.battery_failures, 1);
    assert!(result.completed);
    assert_eq!(result.gave_up, 0);
    // Write-through mode honours the stable-storage rule by construction;
    // the drain on failure keeps everything previously acknowledged safe.
    assert_eq!(stats.lost_acked_bytes, 0);
    assert_eq!(system.lost_acked_bytes_on_disk(), 0);

    // A healthy-battery run of the same copy is faster: the failure window
    // really did degrade service.
    let mut healthy = FileCopySystem::new(copy_config(WritePolicy::Gathering).with_presto(true));
    let baseline = healthy.run();
    assert!(
        result.elapsed_secs > baseline.elapsed_secs,
        "write-through window did not slow the copy ({} vs {})",
        result.elapsed_secs,
        baseline.elapsed_secs
    );
}

// ---------------------------------------------------------------------------
// Disk degradation: bounded retries, no lost work.
// ---------------------------------------------------------------------------

#[test]
fn transient_disk_faults_retry_and_complete() {
    let plan = FaultPlan::new().at(
        SimTime::ZERO + Duration::from_millis(200),
        FaultKind::DiskDegrade {
            duration: Duration::from_millis(400),
            stall: Duration::from_millis(15),
            retries: 2,
        },
    );
    let mut system = FileCopySystem::new(copy_config(WritePolicy::Gathering).with_fault_plan(plan));
    let result = system.run();
    let stats = system.server().stats();
    assert!(result.completed);
    assert!(
        stats.disk_retries > 0,
        "the degradation window saw no transfers"
    );
    assert_eq!(stats.lost_acked_bytes, 0);
    assert_eq!(system.lost_acked_bytes_on_disk(), 0);
}

// ---------------------------------------------------------------------------
// The SFS workload under a chaos schedule: every call is accounted for.
// ---------------------------------------------------------------------------

#[test]
fn sfs_chaos_schedule_accounts_for_every_call() {
    let secs = 8u64;
    let horizon = Duration::from_secs(secs);
    // A seeded Poisson crash process plus a loss burst: replayable chaos.
    let plan = FaultPlan::seeded_crashes(0xC4A5, Duration::from_secs(3), horizon).at(
        SimTime::ZERO + Duration::from_secs(5),
        FaultKind::LossBurst {
            duration: Duration::from_millis(500),
            probability: 0.5,
            segment: None,
        },
    );
    assert!(!plan.is_empty());
    let mut config = SfsConfig::figure2(400.0, WritePolicy::Gathering)
        .with_fault_plan(plan.clone())
        .with_loss(0.02);
    config.duration = horizon;
    let mut system = SfsSystem::new(config);
    let point = system.run();
    let stats = system.server().stats();
    let (issued, completed) = system.counts();
    assert!(stats.crashes >= 1, "the seeded schedule never crashed");
    assert!(system.retransmissions() > 0);
    assert_eq!(stats.lost_acked_bytes, 0);
    assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
    // Nothing vanishes: every issued call either completed or was counted
    // as given up — never silently dropped.
    assert_eq!(issued, completed + system.gave_up());
    assert!(point.achieved_ops_per_sec > 0.0);

    // The same seed replays to the same run, byte for byte.
    let mut config = SfsConfig::figure2(400.0, WritePolicy::Gathering)
        .with_fault_plan(plan)
        .with_loss(0.02);
    config.duration = horizon;
    let mut replay = SfsSystem::new(config);
    let again = replay.run();
    assert_eq!(format!("{point:?}"), format!("{again:?}"));
    assert_eq!(replay.counts(), (issued, completed));
    assert_eq!(replay.gave_up(), system.gave_up());

    // The Prestoserve figure: a battery failure mid-run, still no loss.
    let mut config =
        SfsConfig::figure3(400.0, WritePolicy::Gathering).with_fault_plan(FaultPlan::new().at(
            SimTime::ZERO + Duration::from_secs(2),
            FaultKind::BatteryFailure {
                repair_after: Duration::from_secs(2),
            },
        ));
    config.duration = Duration::from_secs(6);
    let mut presto = SfsSystem::new(config);
    presto.run();
    let stats = presto.server().stats();
    assert_eq!(stats.battery_failures, 1);
    assert_eq!(stats.lost_acked_bytes, 0);
    let (issued, completed) = presto.counts();
    assert_eq!(issued, completed + presto.gave_up());
}

// ---------------------------------------------------------------------------
// The partitioned simulation core replays fault schedules bit for bit.
// ---------------------------------------------------------------------------

#[test]
fn partitioned_loops_replay_the_chaos_schedule_bit_for_bit() {
    // The seeded chaos schedule from above, re-run on 2 and 4 cooperating
    // event loops: crashes, the loss burst, steady datagram loss and every
    // retransmission must replay identically to the serial event loop.
    let secs = 8u64;
    let horizon = Duration::from_secs(secs);
    let plan = FaultPlan::seeded_crashes(0xC4A5, Duration::from_secs(3), horizon).at(
        SimTime::ZERO + Duration::from_secs(5),
        FaultKind::LossBurst {
            duration: Duration::from_millis(500),
            probability: 0.5,
            segment: None,
        },
    );
    let make = |threads: usize| {
        let mut config = SfsConfig::figure2(400.0, WritePolicy::Gathering)
            .with_fault_plan(plan.clone())
            .with_loss(0.02)
            .with_sim_threads(threads);
        config.duration = horizon;
        config
    };
    let mut serial = SfsSystem::new(make(0));
    let point = serial.run();
    assert!(serial.server().stats().crashes >= 1);
    for threads in [2, 4] {
        let mut par = SfsSystem::new(make(threads));
        let again = par.run();
        assert_eq!(
            format!("{point:?}"),
            format!("{again:?}"),
            "sim_threads={threads} diverged from the serial chaos run"
        );
        assert_eq!(par.counts(), serial.counts());
        assert_eq!(par.events_processed(), serial.events_processed());
        assert_eq!(par.retransmissions(), serial.retransmissions());
        assert_eq!(par.gave_up(), serial.gave_up());
        assert_eq!(par.clamped_past(), 0);
        assert_eq!(
            par.server().stats().crashes,
            serial.server().stats().crashes
        );
        assert_eq!(par.server().stats().lost_acked_bytes, 0);
    }
}

#[test]
fn partitioned_copy_survives_the_crash_identically() {
    // The mid-copy crash under the partitioned core: the reboot, the
    // retransmission storm and the recovery oracle all replay exactly.
    let mut serial =
        FileCopySystem::new(copy_config(WritePolicy::Gathering).with_fault_plan(mid_copy_crash()));
    let a = serial.run();
    for threads in [2, 4] {
        let mut par = FileCopySystem::new(
            copy_config(WritePolicy::Gathering)
                .with_fault_plan(mid_copy_crash())
                .with_sim_threads(threads),
        );
        let b = par.run();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "sim_threads={threads} diverged from the serial crash-recovery run"
        );
        assert_eq!(par.events_processed(), serial.events_processed());
        assert_eq!(par.clamped_past(), 0);
        assert_eq!(par.lost_acked_bytes_on_disk(), 0);
    }
}

#[test]
fn partitioned_unstable_sfs_replays_the_crash_schedule_bit_for_bit() {
    // The acceptance sweep for the unified-cache write path: the SFS mix
    // with the bounded cache armed and WRITE(UNSTABLE)+COMMIT semantics,
    // under a seeded crash schedule, on 2, 4 and 8 cooperating event loops.
    // Background writeback, COMMIT flushes, the boot-verifier bump and the
    // post-reboot retransmission storm must all replay bit for bit.
    let secs = 8u64;
    let horizon = Duration::from_secs(secs);
    let plan = FaultPlan::seeded_crashes(0xC4A5, Duration::from_secs(3), horizon);
    let make = |threads: usize| {
        let mut config = SfsConfig::figure2(400.0, WritePolicy::Gathering)
            .with_fault_plan(plan.clone())
            .with_loss(0.02)
            .with_unified_cache(4096)
            .with_stability(StabilityMode::Unstable)
            .with_sim_threads(threads);
        config.duration = horizon;
        config
    };
    let mut serial = SfsSystem::new(make(0));
    let point = serial.run();
    let stats = serial.server().stats();
    assert!(stats.crashes >= 1, "the seeded schedule never crashed");
    assert!(stats.unstable_writes > 0, "no write ever went UNSTABLE");
    assert!(stats.commits > 0, "no COMMIT was ever processed");
    assert_eq!(stats.lost_acked_bytes, 0);
    for threads in [2, 4, 8] {
        let mut par = SfsSystem::new(make(threads));
        let again = par.run();
        assert_eq!(
            format!("{point:?}"),
            format!("{again:?}"),
            "sim_threads={threads} diverged from the serial unstable-cache run"
        );
        assert_eq!(par.counts(), serial.counts());
        assert_eq!(par.events_processed(), serial.events_processed());
        assert_eq!(par.retransmissions(), serial.retransmissions());
        assert_eq!(par.gave_up(), serial.gave_up());
        assert_eq!(par.clamped_past(), 0);
        let pstats = par.server().stats();
        assert_eq!(pstats.crashes, stats.crashes);
        assert_eq!(pstats.unstable_writes, stats.unstable_writes);
        assert_eq!(pstats.commits, stats.commits);
        assert_eq!(pstats.lost_unstable_bytes, stats.lost_unstable_bytes);
        assert_eq!(pstats.lost_acked_bytes, 0);
    }
}

// ---------------------------------------------------------------------------
// Give-up is a counted failure, never a silent success.
// ---------------------------------------------------------------------------

#[test]
fn exhausted_retransmits_are_counted_never_silent() {
    // A clean partition (probability 1.0) that outlasts the client's entire
    // retransmit budget: 50 ms, then 100, 200, 400 — all inside the 5 s
    // outage, so the affected biods must give up.
    let plan = FaultPlan::new().at(
        SimTime::ZERO + Duration::from_millis(100),
        FaultKind::LossBurst {
            duration: Duration::from_secs(5),
            probability: 1.0,
            segment: None,
        },
    );
    let mut system = FileCopySystem::new(
        copy_config(WritePolicy::Gathering)
            .with_fault_plan(plan)
            .with_client_retry(Duration::from_millis(50), 3),
    );
    let result = system.run();
    assert!(
        result.gave_up > 0,
        "a total partition longer than the whole backoff budget must force give-up"
    );
    // The contract: gave_up > 0 can never coexist with completed == true.
    assert!(
        !result.completed,
        "a run that abandoned writes reported success"
    );
    assert!(result.retransmissions > 0);
}

// ---------------------------------------------------------------------------
// The §6.9 hazard, rebooted: a pre-crash retransmission meets a fresh
// duplicate request cache.
// ---------------------------------------------------------------------------

/// Drive a bare server to completion, collecting replies.
fn drive(server: &mut NfsServer, inputs: Vec<(SimTime, ServerInput)>) -> Vec<SimTime> {
    let mut queue = wg_simcore::EventQueue::new();
    for (t, input) in inputs {
        queue.schedule_at(t, input);
    }
    let mut replies = Vec::new();
    while let Some((t, input)) = queue.pop() {
        for action in server.handle(t, input) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    queue.schedule_at(at, ServerInput::Wakeup { token });
                }
                ServerAction::Reply { at, reply, .. } => {
                    assert!(reply.body.is_ok());
                    replies.push(at);
                }
            }
        }
    }
    replies
}

#[test]
fn retransmission_of_a_pre_crash_gathered_write_re_executes_safely() {
    // The zero-byte-write family of crash bugs: a write is gathered (in the
    // dupcache as InProgress, data staged in volatile memory), the server
    // dies before the flush, and the client's retransmission arrives after
    // reboot.  The fresh dupcache must treat it as new work and re-execute
    // it fully — replaying a stale "in progress" answer, or finding a stale
    // completed entry, would acknowledge a write whose data no longer
    // exists anywhere.
    const FILL: u8 = 0xAB;
    const LEN: u32 = 8192;
    let mut cfg = ServerConfig::standard();
    cfg.policy = WritePolicy::Gathering;
    let mut server = NfsServer::new(cfg);
    let root = server.fs().root();
    let ino = server.fs_mut().create(root, "target", 0o644, 0).unwrap();
    let fh = server.handle_for_ino(ino).unwrap();
    let call = NfsCall::new(
        Xid(42),
        NfsCallBody::Write(WriteArgs::new(fh, 0, vec![FILL; LEN as usize])),
    );

    // Deliver the write; the gathering window opens (a Wakeup is pending)
    // but the server crashes before the flush timer fires — the reply was
    // never sent, the staged data and the dupcache entry are gone.
    let wire = call.wire_size();
    let mut stale_wakeups = Vec::new();
    for action in server.handle(
        SimTime::ZERO,
        ServerInput::Datagram {
            client: 1,
            call: call.clone(),
            wire_size: wire,
            fragments: 6,
        },
    ) {
        match action {
            ServerAction::Wakeup { at, token } => stale_wakeups.push((at, token)),
            ServerAction::Reply { .. } => panic!("gathered write replied before its flush"),
        }
    }
    assert!(!stale_wakeups.is_empty(), "gathering never opened a window");
    let recovered = server.crash(SimTime::from_millis(2));
    assert!(recovered > SimTime::from_millis(2));
    assert_eq!(server.stats().crashes, 1);
    // Nothing was acknowledged, so nothing acknowledged was lost.
    assert_eq!(server.stats().lost_acked_bytes, 0);

    // The pre-crash flush timer fires into the rebooted server: its token
    // belongs to a dead incarnation and must be ignored.
    let mut inputs: Vec<(SimTime, ServerInput)> = stale_wakeups
        .into_iter()
        .map(|(at, token)| (at.max(recovered), ServerInput::Wakeup { token }))
        .collect();
    // The client's retransmission of the identical call arrives after
    // recovery.  The dupcache is fresh — this must re-execute, not replay.
    let retransmit = call.clone();
    let wire = retransmit.wire_size();
    inputs.push((
        recovered + Duration::from_millis(1),
        ServerInput::Datagram {
            client: 1,
            call: retransmit,
            wire_size: wire,
            fragments: 6,
        },
    ));
    let replies = drive(&mut server, inputs);
    assert_eq!(
        replies.len(),
        1,
        "the re-executed write was not acknowledged"
    );
    assert_eq!(server.uncommitted_bytes(), 0);
    assert_eq!(server.dupcache_evicted_in_progress(), 0);

    // The on-disk oracle: the acknowledged range holds exactly the written
    // pattern — not zeros, not a torn page.
    let mut fs = server.fs().clone();
    let data = fs.read(ino, 0, LEN as u64).expect("file readable");
    let bytes = data.to_vec();
    assert_eq!(bytes.len(), LEN as usize);
    assert!(
        bytes.iter().all(|&b| b == FILL),
        "re-executed write left wrong bytes on disk"
    );
}

// ---------------------------------------------------------------------------
// Crashes under an armed client-state layer: the state oracle stays clean.
// ---------------------------------------------------------------------------

#[test]
fn leases_survive_crashes_with_a_clean_state_oracle() {
    // Repeated crashes under leased load: every reboot wipes the volatile
    // state table and opens a grace window; clients re-register, reclaim
    // their locks, and the state oracle must find no write admitted on an
    // expired lease and no lock granted over an unreclaimed pre-crash hold.
    let secs = 8u64;
    let horizon = Duration::from_secs(secs);
    let mut config = SfsConfig::figure2(400.0, WritePolicy::Gathering)
        .with_shards(4)
        .with_leases(true)
        .with_lease_timing(
            Duration::from_millis(200),
            Duration::from_secs(2),
            Duration::from_millis(1500),
        )
        .with_fault_plan(FaultPlan::crash_every(Duration::from_secs(2), horizon))
        .with_retry(Duration::from_millis(300), 6);
    config.duration = horizon;
    let mut system = SfsSystem::new(config);
    system.run();

    let stats = system.server().stats();
    assert!(stats.crashes >= 2, "the schedule never crashed");
    assert!(system.observed_server_reboots() > 0);
    // The durability contract holds with state traffic in the mix.
    assert_eq!(stats.lost_acked_bytes, 0);
    assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
    let (issued, completed) = system.counts();
    assert_eq!(issued, completed + system.gave_up());

    // The state oracle: zero violations across every crash and grace window.
    let st = system.server().state_stats();
    assert_eq!(
        st.grace_conflicts, 0,
        "lock granted over an unreclaimed hold"
    );
    assert_eq!(st.expired_lease_writes, 0, "write admitted on a dead lease");
    // Recovery actually happened: leases re-registered after reboots and at
    // least one lock made it through a grace-window reclaim.
    assert!(st.leases_granted > 0);
    assert!(st.locks_reclaimed > 0, "no grace-period reclaim ever ran");
    let (_, reclaims_seen) = system.lock_grants();
    assert!(reclaims_seen > 0, "no client observed a reclaim grant");
    // Table invariant: no lock outlives its owner's lease.
    assert!(system.server().held_locks() <= system.server().active_lease_clients());
}

#[test]
fn abandoned_leases_expire_and_their_locks_are_orphaned() {
    // Streams that exhaust their retransmission budget give up and go
    // lease-dead: they stop renewing.  The server-side expiry sweep must
    // collect every such lease and orphan its locks — nothing may leak.
    let secs = 8u64;
    let mut config = SfsConfig::figure2(300.0, WritePolicy::Gathering)
        .with_shards(4)
        .with_leases(true)
        .with_lease_timing(
            Duration::from_millis(300),
            Duration::from_millis(900),
            Duration::from_millis(300),
        )
        .with_loss(0.08)
        .with_retry(Duration::from_millis(150), 2);
    config.duration = Duration::from_secs(secs);
    let mut system = SfsSystem::new(config);
    system.run();

    assert!(
        system.gave_up() > 0,
        "the loss schedule never broke a stream"
    );
    let dead = system.lease_dead_streams();
    assert!(dead > 0, "no stream went lease-dead despite give-ups");
    let st = system.server().state_stats();
    // Every abandoned lease was swept, and sweeping orphaned its state.
    assert!(
        st.leases_expired > 0,
        "{dead} dead streams but the expiry sweep never fired"
    );
    assert!(st.state_orphaned > 0, "expired leases left no orphan trail");
    // The oracle and the table invariant hold through the churn.
    assert_eq!(st.grace_conflicts, 0);
    assert_eq!(st.expired_lease_writes, 0);
    assert_eq!(system.server().stats().lost_acked_bytes, 0);
    assert!(system.server().held_locks() <= system.server().active_lease_clients());
}
