//! End-to-end integration: client → network → server → UFS → disk/NVRAM for
//! every combination of network, storage and write policy, checking both the
//! performance plumbing (throughput is produced, statistics add up) and the
//! functional plumbing (the bytes the client wrote are the bytes the
//! filesystem holds).

use wg_server::WritePolicy;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

const FILE: u64 = 1024 * 1024;

fn run(
    network: NetworkKind,
    biods: usize,
    policy: WritePolicy,
    presto: bool,
    spindles: usize,
) -> (wg_workload::FileCopyResult, FileCopySystem) {
    let mut system = FileCopySystem::new(
        ExperimentConfig::new(network, biods, policy)
            .with_presto(presto)
            .with_spindles(spindles)
            .with_file_size(FILE),
    );
    let result = system.run();
    (result, system)
}

#[test]
fn every_configuration_completes_and_preserves_data() {
    for network in [NetworkKind::Ethernet, NetworkKind::Fddi] {
        for presto in [false, true] {
            for spindles in [1usize, 3] {
                for policy in [
                    WritePolicy::Standard,
                    WritePolicy::Gathering,
                    WritePolicy::FirstWriteLatency,
                ] {
                    let (result, system) = run(network, 4, policy, presto, spindles);
                    assert!(
                        result.client_write_kb_per_sec > 0.0,
                        "no throughput for {network:?}/{policy:?}/presto={presto}/spindles={spindles}"
                    );
                    assert_eq!(result.retransmissions, 0);
                    // Functional check: every block carries its fill pattern.
                    let mut fs = system.server().fs().clone();
                    let root = fs.root();
                    let ino = fs.lookup(root, "copy-target").unwrap();
                    assert_eq!(fs.getattr(ino).unwrap().size, FILE);
                    for block in [0u64, 1, 63, 127] {
                        let data = fs.read(ino, block * 8192, 8192).unwrap().to_vec();
                        assert!(
                            data.iter().all(|&b| b == block as u8),
                            "block {block} corrupted under {policy:?}"
                        );
                    }
                    // Stable-storage check for the conforming policies.
                    assert_eq!(
                        system.server().uncommitted_bytes(),
                        0,
                        "{policy:?} left dirty data behind"
                    );
                }
            }
        }
    }
}

#[test]
fn client_byte_accounting_matches_server_side() {
    let (result, system) = run(NetworkKind::Fddi, 7, WritePolicy::Gathering, false, 1);
    let client = system.client().stats();
    assert_eq!(client.bytes_acked, FILE);
    assert_eq!(client.requests_sent, FILE / 8192);
    // The server answered every request exactly once.
    assert_eq!(system.server().stats().replies_sent, FILE / 8192);
    // Disk wrote at least the file (data) once; with gathering the metadata
    // overhead is small.
    let disk = system.server().device_stats();
    assert!(disk.transfers.bytes() >= FILE);
    assert!(disk.transfers.bytes() < FILE * 2);
    assert!(result.elapsed_secs > 0.0);
}

#[test]
fn gathering_beats_standard_and_loses_to_nothing_dangerous() {
    let (standard, _) = run(NetworkKind::Fddi, 15, WritePolicy::Standard, false, 1);
    let (gathering, _) = run(NetworkKind::Fddi, 15, WritePolicy::Gathering, false, 1);
    let (dangerous, sys) = run(NetworkKind::Fddi, 15, WritePolicy::DangerousAsync, false, 1);
    assert!(
        gathering.client_write_kb_per_sec > standard.client_write_kb_per_sec * 2.0,
        "gathering {:.0} vs standard {:.0}",
        gathering.client_write_kb_per_sec,
        standard.client_write_kb_per_sec
    );
    // Dangerous mode is faster still — but only because it cheats.
    assert!(dangerous.client_write_kb_per_sec > gathering.client_write_kb_per_sec);
    assert!(sys.server().uncommitted_bytes() > 0);
}

#[test]
fn disk_transactions_per_byte_shrink_with_gathering() {
    let (standard, _) = run(NetworkKind::Fddi, 15, WritePolicy::Standard, false, 1);
    let (gathering, _) = run(NetworkKind::Fddi, 15, WritePolicy::Gathering, false, 1);
    let std_tx_per_kb = standard.disk_trans_per_sec / standard.disk_kb_per_sec;
    let gat_tx_per_kb = gathering.disk_trans_per_sec / gathering.disk_kb_per_sec;
    assert!(
        gat_tx_per_kb < std_tx_per_kb * 0.55,
        "expected a large reduction in transactions per KB: {gat_tx_per_kb:.4} vs {std_tx_per_kb:.4}"
    );
    assert!(gathering.mean_batch_size > 3.0);
}

#[test]
fn runs_are_deterministic() {
    let (a, _) = run(NetworkKind::Ethernet, 7, WritePolicy::Gathering, true, 1);
    let (b, _) = run(NetworkKind::Ethernet, 7, WritePolicy::Gathering, true, 1);
    assert_eq!(a.client_write_kb_per_sec, b.client_write_kb_per_sec);
    assert_eq!(a.disk_trans_per_sec, b.disk_trans_per_sec);
    assert_eq!(a.server_cpu_percent, b.server_cpu_percent);
    assert_eq!(a.elapsed_secs, b.elapsed_secs);
}
