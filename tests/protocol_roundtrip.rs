//! Wire-level protocol integration: every request and reply used by the
//! simulation survives a trip through real XDR bytes, malformed input is
//! rejected without panics, and the duplicate request cache interacts
//! correctly with retransmitted wire messages.

use wg_nfsproto::{
    CreateArgs, DirOpArgs, Fattr, FileHandle, GetattrArgs, NfsCall, NfsCallBody, NfsReply,
    NfsReplyBody, NfsStatus, ReadArgs, ReadOk, Sattr, SetattrArgs, StatusReply, WireMessage,
    WriteArgs, Xid, NFS_MAXDATA,
};

fn fh(ino: u64) -> FileHandle {
    FileHandle::new(1, ino, 3)
}

#[test]
fn a_full_conversation_round_trips_over_the_wire() {
    let calls = vec![
        NfsCall::new(Xid(1), NfsCallBody::Null),
        NfsCall::new(
            Xid(2),
            NfsCallBody::Create(CreateArgs {
                where_: DirOpArgs {
                    dir: fh(2),
                    name: "report.txt".into(),
                },
                attributes: Sattr::with_mode(0o644),
            }),
        ),
        NfsCall::new(
            Xid(3),
            NfsCallBody::Write(WriteArgs::new(fh(5), 0, vec![0xAA; NFS_MAXDATA as usize])),
        ),
        NfsCall::new(
            Xid(4),
            NfsCallBody::Read(ReadArgs {
                file: fh(5),
                offset: 0,
                count: 8192,
                totalcount: 0,
            }),
        ),
        NfsCall::new(
            Xid(5),
            NfsCallBody::Setattr(SetattrArgs {
                file: fh(5),
                attributes: Sattr::with_mode(0o600),
            }),
        ),
        NfsCall::new(Xid(6), NfsCallBody::Getattr(GetattrArgs { file: fh(5) })),
    ];
    for call in calls {
        let wire = call.to_wire();
        // The wire form is self-contained and parses back to the same value.
        let parsed = NfsCall::from_wire(&wire).expect("valid call");
        assert_eq!(parsed, call);
        // Sizes are sane: every call fits a UDP datagram with the v2 limit.
        assert!(wire.len() <= NFS_MAXDATA as usize + 512);
    }

    let replies = vec![
        NfsReply::new(Xid(1), NfsReplyBody::Null),
        NfsReply::new(
            Xid(3),
            NfsReplyBody::Attr(StatusReply::Ok(Fattr::default())),
        ),
        NfsReply::new(
            Xid(4),
            NfsReplyBody::Read(StatusReply::Ok(ReadOk {
                attributes: Fattr::default(),
                data: vec![0xAA; 8192].into(),
            })),
        ),
        NfsReply::new(Xid(9), NfsReplyBody::Status(NfsStatus::Stale)),
        NfsReply::new(
            Xid(10),
            NfsReplyBody::Attr(StatusReply::Err(NfsStatus::NoSpc)),
        ),
    ];
    for reply in replies {
        let parsed = NfsReply::from_wire(&reply.to_wire()).expect("valid reply");
        assert_eq!(parsed, reply);
    }
}

#[test]
fn an_8k_write_fragments_like_the_paper_says() {
    // "network traffic will resemble a freight train of 8K (actually a little
    // larger due to protocol headers, etc.) datagrams fragmented into
    // transport units"
    let call = NfsCall::new(
        Xid(77),
        NfsCallBody::Write(WriteArgs::new(fh(1), 0, vec![1; 8192])),
    );
    let size = call.wire_size();
    assert!(size > 8192 && size < 8192 + 300, "wire size {size}");
    let ethernet = wg_net::MediumParams::ethernet();
    let fddi = wg_net::MediumParams::fddi();
    assert_eq!(ethernet.fragments_for(size), 6);
    assert_eq!(fddi.fragments_for(size), 2);
}

#[test]
fn retransmitted_wire_messages_are_recognised_by_the_dup_cache() {
    use wg_server::dupcache::{DupState, DuplicateRequestCache};
    let mut cache = DuplicateRequestCache::new(64);
    let call = NfsCall::new(
        Xid(500),
        NfsCallBody::Write(WriteArgs::new(fh(9), 8192, vec![2; 1024])),
    );
    // First arrival: new, server starts it.
    let parsed = NfsCall::from_wire(&call.to_wire()).unwrap();
    assert_eq!(cache.lookup(1, parsed.xid), DupState::New);
    cache.start(1, parsed.xid);
    // A retransmission decodes to the same xid and is recognised in-progress.
    let retrans = NfsCall::from_wire(&call.to_wire()).unwrap();
    assert_eq!(retrans.xid, parsed.xid);
    assert_eq!(cache.lookup(1, retrans.xid), DupState::InProgress);
    // After completion the cached reply is replayed, byte-identical on the
    // wire.
    let reply = NfsReply::new(
        parsed.xid,
        NfsReplyBody::Attr(StatusReply::Ok(Fattr::default())),
    );
    cache.complete(1, parsed.xid, std::sync::Arc::new(reply.clone()));
    match cache.lookup(1, retrans.xid) {
        DupState::Done(cached) => assert_eq!(cached.to_wire(), reply.to_wire()),
        other => panic!("expected Done, got {other:?}"),
    }
}

/// Arbitrary byte strings never panic the parsers and are (almost always)
/// rejected; flipping bytes of a valid message never panics either.
///
/// A deterministic seeded driver replaces the original `proptest` strategy
/// (the build environment is offline); the property checked is unchanged.
#[test]
fn malformed_wire_input_is_rejected_safely() {
    let mut rng = wg_simcore::SimRng::seed_from(0xBAD_F00D);
    for _ in 0..128 {
        let len = rng.next_below(600) as usize;
        let mut garbage = vec![0u8; len];
        rng.fill_bytes(&mut garbage);
        let msg = WireMessage { bytes: garbage };
        let _ = NfsCall::from_wire(&msg);
        let _ = NfsReply::from_wire(&msg);

        let call = NfsCall::new(
            Xid(1),
            NfsCallBody::Write(WriteArgs::new(fh(1), 0, vec![3; 64])),
        );
        let mut wire = call.to_wire();
        let idx = (rng.next_below(100) as usize) % wire.bytes.len();
        wire.bytes[idx] = rng.next_below(256) as u8;
        // Must not panic; may or may not decode depending on which byte moved.
        let _ = NfsCall::from_wire(&wire);
    }
}

/// Round-tripping write calls preserves offset and payload exactly.
#[test]
fn write_calls_roundtrip() {
    let mut rng = wg_simcore::SimRng::seed_from(0xC0FFEE);
    for _ in 0..128 {
        let offset = rng.next_below(16_000_000) as u32;
        let xid = rng.next_u64() as u32;
        let len = 1 + rng.next_below(NFS_MAXDATA as u64 - 1) as usize;
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let call = NfsCall::new(
            Xid(xid),
            NfsCallBody::Write(WriteArgs::new(fh(7), offset, data)),
        );
        let back = NfsCall::from_wire(&call.to_wire()).unwrap();
        assert_eq!(back, call);
    }
}
