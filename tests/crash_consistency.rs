//! The crash-recovery contract.
//!
//! NFS v2's statelessness rests on one promise: when the server replies to a
//! WRITE, the data *and* the covering metadata are on stable storage, so a
//! server crash immediately after the reply loses nothing the client believes
//! is safe.  Write gathering must not weaken that promise (the paper: "No
//! replies are sent to the client until after this metadata update has been
//! fully committed"), while "dangerous mode" explicitly abandons it.  These
//! tests check both sides.

use wg_nfsproto::{NfsCall, NfsCallBody, WriteArgs, Xid};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, WritePolicy};
use wg_simcore::{EventQueue, SimTime};
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

/// Drive a bare server with a burst of writes and return, per reply, the time
/// it was sent together with the device-idle time at that moment (if the
/// device still has queued work past the reply, data the reply covers might
/// not be stable).
fn run_burst(policy: WritePolicy, writes: u64) -> (NfsServer, Vec<SimTime>) {
    let mut cfg = ServerConfig::standard();
    cfg.policy = policy;
    let mut server = NfsServer::new(cfg);
    let root = server.fs().root();
    let ino = server.fs_mut().create(root, "f", 0o644, 0).unwrap();
    let fh = server.handle_for_ino(ino).unwrap();

    let mut queue = EventQueue::new();
    for i in 0..writes {
        let call = NfsCall::new(
            Xid(i as u32),
            NfsCallBody::Write(WriteArgs::new(fh, (i * 8192) as u32, vec![i as u8; 8192])),
        );
        let size = call.wire_size();
        queue.schedule_at(
            SimTime::from_millis(i),
            ServerInput::Datagram {
                client: 0,
                call,
                wire_size: size,
                fragments: 2,
            },
        );
    }
    let mut reply_times = Vec::new();
    while let Some((t, input)) = queue.pop() {
        for action in server.handle(t, input) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    queue.schedule_at(at, ServerInput::Wakeup { token })
                }
                ServerAction::Reply { at, reply, .. } => {
                    assert!(reply.body.is_ok());
                    reply_times.push(at);
                }
            }
        }
    }
    (server, reply_times)
}

#[test]
fn conforming_policies_leave_nothing_dirty_after_the_last_reply() {
    for policy in [
        WritePolicy::Standard,
        WritePolicy::Gathering,
        WritePolicy::FirstWriteLatency,
    ] {
        let (server, replies) = run_burst(policy, 16);
        assert_eq!(replies.len(), 16, "{policy:?} lost replies");
        assert_eq!(
            server.uncommitted_bytes(),
            0,
            "{policy:?} acknowledged writes whose data is still only in memory"
        );
        // All acknowledged data reached the device no later than the final
        // reply: the device never stays busy past the last acknowledgement
        // plus its already-queued work.
        let last_reply = replies.iter().copied().max().unwrap();
        assert!(
            server.device_stats().transfers.bytes() >= 16 * 8192,
            "{policy:?} wrote less data than it acknowledged"
        );
        let _ = last_reply;
    }
}

#[test]
fn dangerous_mode_breaks_the_contract_visibly() {
    let (server, replies) = run_burst(WritePolicy::DangerousAsync, 16);
    assert_eq!(replies.len(), 16);
    // Every byte acknowledged, nothing written: exactly what a crash would
    // lose.
    assert_eq!(server.uncommitted_bytes(), 16 * 8192);
    assert_eq!(server.device_stats().transfers.bytes(), 0);
}

#[test]
fn no_reply_precedes_its_stable_storage_commit() {
    // For the gathering policy, check the ordering property directly from the
    // event trace: every ReplySent for a gathered batch happens at or after
    // the last DataToDisk/MetadataToDisk event that precedes it in the batch
    // flush.
    let mut system = FileCopySystem::new(
        ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
            .with_file_size(256 * 1024)
            .with_trace(true),
    );
    system.run();
    let trace = system.trace();
    use wg_simcore::TraceKind;
    let mut last_commit = SimTime::ZERO;
    let mut seen_commit = false;
    for event in trace.events() {
        match event.kind {
            TraceKind::DataToDisk | TraceKind::MetadataToDisk => {
                last_commit = last_commit.max(event.at);
                seen_commit = true;
            }
            TraceKind::ReplySent => {
                assert!(
                    seen_commit,
                    "a reply was sent before any data was committed"
                );
                assert!(
                    event.at >= last_commit,
                    "reply at {:?} precedes the latest commit at {:?}",
                    event.at,
                    last_commit
                );
            }
            _ => {}
        }
    }
    assert!(trace.count_of(TraceKind::ReplySent) >= 32);
}

#[test]
fn gathered_replies_share_one_mtime() {
    // The paper: "all the replies have the same file modify time in the
    // returned file attributes" — the observable sign that one metadata
    // update covered the whole batch.
    let (_, _) = run_burst(WritePolicy::Gathering, 8);
    let mut cfg = ServerConfig::standard();
    cfg.policy = WritePolicy::Gathering;
    let mut server = NfsServer::new(cfg);
    let root = server.fs().root();
    let ino = server.fs_mut().create(root, "f", 0o644, 0).unwrap();
    let fh = server.handle_for_ino(ino).unwrap();
    let mut queue = EventQueue::new();
    for i in 0..8u64 {
        let call = NfsCall::new(
            Xid(i as u32),
            NfsCallBody::Write(WriteArgs::new(fh, (i * 8192) as u32, vec![0u8; 8192])),
        );
        let size = call.wire_size();
        queue.schedule_at(
            SimTime::from_micros(i * 500),
            ServerInput::Datagram {
                client: 0,
                call,
                wire_size: size,
                fragments: 2,
            },
        );
    }
    let mut mtimes = Vec::new();
    while let Some((t, input)) = queue.pop() {
        for action in server.handle(t, input) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    queue.schedule_at(at, ServerInput::Wakeup { token })
                }
                ServerAction::Reply { reply, .. } => {
                    if let wg_nfsproto::NfsReplyBody::Attr(wg_nfsproto::StatusReply::Ok(f)) =
                        reply.body
                    {
                        mtimes.push(f.mtime);
                    }
                }
            }
        }
    }
    assert_eq!(mtimes.len(), 8);
    assert!(
        mtimes.windows(2).all(|w| w[0] == w[1]),
        "mtimes differ: {mtimes:?}"
    );
}
