//! Invariants of the pipelined storage stack.
//!
//! The `io_overlap` knob must be a pure scheduling change: with it off the
//! simulation is byte-identical to the paper's serial driver (pinned against
//! the Table 1 golden snapshot by `tests/golden_tables.rs`, whose
//! explicit-knobs test sets `io_overlap = false` alongside `shards`/`cores`);
//! with it on, the same physical work happens — identical bytes and transfer
//! counts per spindle, FIFO-monotone completions on every member queue —
//! only sooner, never later.

use wg_disk::{BlockDevice, DiskRequest, StripeSet};
use wg_server::WritePolicy;
use wg_simcore::SimTime;
use wg_workload::{
    ExperimentConfig, FileCopySystem, MultiClientConfig, MultiClientSystem, NetworkKind,
};

/// A scattered mix of cluster-sized and small requests spanning the stripe.
fn workload(n: u64) -> Vec<DiskRequest> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                DiskRequest::write(i * 64 * 1024, 64 * 1024)
            } else {
                DiskRequest::write(200_000_000 + i * 8192, 8192)
            }
        })
        .collect()
}

#[test]
fn per_spindle_completions_are_fifo_monotone_under_queued_submission() {
    let mut set = StripeSet::three_rz26();
    let reqs = workload(48);
    // Submit everything at staggered times; watch each member's queue clock:
    // FIFO service means a member's free_at (the completion time of the last
    // piece it accepted) never decreases as later pieces join its queue.
    let mut member_clocks = vec![SimTime::ZERO; set.width()];
    for (i, &req) in reqs.iter().enumerate() {
        let submitted_at = SimTime::from_micros(i as u64 * 50);
        let done = set.submit_at(submitted_at, req);
        assert!(done > submitted_at);
        for (m, clock) in member_clocks.iter_mut().enumerate() {
            let free = set.member_free_at(m).expect("member exists");
            assert!(
                free >= *clock,
                "member {m} completion clock went backwards: {free} < {clock}"
            );
            *clock = free;
        }
        // A request's completion is the latest of its member queues' clocks
        // among the members it touched.
        let touched_max = set
            .split(req)
            .iter()
            .map(|&(m, _)| set.member_free_at(m).expect("member exists"))
            .max()
            .expect("request has pieces");
        assert_eq!(done, touched_max);
    }
}

#[test]
fn queued_batch_moves_identical_bytes_and_never_finishes_later_than_serial() {
    let reqs = workload(64);

    // Serial: each request chains on the previous one's completion — the
    // pre-pipeline server's I/O loop.
    let mut serial_set = StripeSet::three_rz26();
    let mut serial_done = SimTime::ZERO;
    for &req in &reqs {
        serial_done = serial_set.submit(serial_done, req);
    }

    // Overlapped: the whole plan is enqueued at once; every piece joins its
    // own spindle's FIFO queue.
    let mut queued_set = StripeSet::three_rz26();
    let completions = queued_set.submit_batch(SimTime::ZERO, &reqs);
    let queued_done = completions.iter().copied().max().expect("non-empty");

    // Exactly the same physical work per spindle...
    let serial_spindles = serial_set.spindle_stats();
    let queued_spindles = queued_set.spindle_stats();
    assert_eq!(serial_spindles.len(), queued_spindles.len());
    for (s, q) in serial_spindles.iter().zip(queued_spindles.iter()) {
        assert_eq!(s.stats.transfers.events(), q.stats.transfers.events());
        assert_eq!(s.stats.transfers.bytes(), q.stats.transfers.bytes());
    }
    assert_eq!(
        serial_set.stats().transfers.bytes(),
        queued_set.stats().transfers.bytes()
    );
    // ...finishing strictly earlier here (and never later in general).
    assert!(
        queued_done < serial_done,
        "queued {queued_done} vs serial {serial_done}"
    );
    // Queued submission actually queued: some spindle saw depth > 1.
    assert!(queued_spindles.iter().any(|s| s.max_queue_depth > 1));
}

#[test]
fn overlapped_file_copy_on_a_stripe_set_is_never_slower() {
    let run = |overlap: bool| {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 15, WritePolicy::Gathering)
                .with_spindles(3)
                .with_io_overlap(overlap)
                .with_file_size(2 * 1024 * 1024),
        );
        let result = system.run();
        assert!(result.completed);
        assert_eq!(system.server().uncommitted_bytes(), 0);
        result
    };
    let serial = run(false);
    let overlapped = run(true);
    assert!(
        overlapped.elapsed_secs <= serial.elapsed_secs * 1.0001,
        "overlap {:.4}s vs serial {:.4}s",
        overlapped.elapsed_secs,
        serial.elapsed_secs
    );
}

#[test]
fn overlapped_sharded_stripe_run_beats_the_disk_floored_serial_cell() {
    // The headline configuration: sharded request path, per-client LANs, a
    // 3-spindle stripe set and the pipelined storage stack, vs the same
    // topology with the serial driver.  The serial cells are disk-floored;
    // overlap must buy real aggregate throughput.
    let run = |overlap: bool| {
        let mut system = MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
                .with_bytes_per_client(4 * 1024 * 1024)
                .with_shards(4)
                .with_cores(4)
                .with_per_client_lans(true)
                .with_spindles(3)
                .with_io_overlap(overlap),
        );
        let result = system.run();
        assert!(result.completed);
        system.verify_on_disk().expect("per-client data intact");
        assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
        let spindles = system.server().spindle_stats();
        (result, spindles)
    };
    let (serial, _) = run(false);
    let (overlapped, spindles) = run(true);
    assert!(
        overlapped.aggregate_kb_per_sec > serial.aggregate_kb_per_sec,
        "overlap {:.0} KB/s vs serial {:.0} KB/s",
        overlapped.aggregate_kb_per_sec,
        serial.aggregate_kb_per_sec
    );
    // The win is visible as spindle-level concurrency: total busy time
    // strictly exceeds the busiest single spindle's.
    let busys: Vec<f64> = spindles
        .iter()
        .map(|s| s.stats.busy.busy_time().as_secs_f64())
        .collect();
    let total: f64 = busys.iter().sum();
    let max = busys.iter().copied().fold(0.0, f64::max);
    assert!(
        total > max,
        "no spindle overlap: total busy {total:.4}s, max single {max:.4}s"
    );
}
