//! Shape checks against the paper's tables.
//!
//! The reproduction is not expected to match 1993 absolute numbers, but the
//! qualitative claims of the Results section must hold.  Each test states the
//! claim it checks.  A reduced (2 MB) copy keeps the suite fast; the `tables`
//! binary regenerates the full 10 MB versions.

use wg_server::WritePolicy;
use wg_workload::{system::run_cell, ExperimentConfig, FileCopyResult, NetworkKind};

const FILE: u64 = 2 * 1024 * 1024;

fn cell(
    network: NetworkKind,
    biods: usize,
    policy: WritePolicy,
    presto: bool,
    spindles: usize,
) -> FileCopyResult {
    run_cell(
        ExperimentConfig::new(network, biods, policy)
            .with_presto(presto)
            .with_spindles(spindles)
            .with_file_size(FILE),
    )
}

/// Table 1/3 claim: without gathering, client write speed is pinned by the
/// synchronous per-write disk work and barely moves with more biods.
#[test]
fn baseline_throughput_is_flat_in_biods() {
    for network in [NetworkKind::Ethernet, NetworkKind::Fddi] {
        let few = cell(network, 0, WritePolicy::Standard, false, 1);
        let many = cell(network, 15, WritePolicy::Standard, false, 1);
        assert!(
            many.client_write_kb_per_sec < few.client_write_kb_per_sec * 1.35,
            "{network:?}: {:.0} -> {:.0} KB/s should be nearly flat",
            few.client_write_kb_per_sec,
            many.client_write_kb_per_sec
        );
    }
}

/// Table 1/3/5 claim: with gathering, throughput rises strongly with the biod
/// count (228% gain at 15 biods on Ethernet, 5x on FDDI).
#[test]
fn gathering_scales_with_biods() {
    for (network, factor) in [(NetworkKind::Fddi, 3.0), (NetworkKind::Ethernet, 1.5)] {
        let baseline = cell(network, 15, WritePolicy::Standard, false, 1);
        let gathered = cell(network, 15, WritePolicy::Gathering, false, 1);
        assert!(
            gathered.client_write_kb_per_sec > baseline.client_write_kb_per_sec * factor,
            "{network:?}: gathering {:.0} KB/s vs standard {:.0} KB/s (wanted > {factor}x)",
            gathered.client_write_kb_per_sec,
            baseline.client_write_kb_per_sec
        );
        let none = cell(network, 0, WritePolicy::Gathering, false, 1);
        assert!(
            gathered.client_write_kb_per_sec > none.client_write_kb_per_sec * 2.0,
            "{network:?}: gathering should improve with biods"
        );
    }
}

/// §6.10 / Table 1 claim: the 0-biod (dumb PC) case loses with gathering, but
/// the loss is modest (the paper measured about 15%).
#[test]
fn zero_biod_penalty_is_bounded() {
    let standard = cell(NetworkKind::Ethernet, 0, WritePolicy::Standard, false, 1);
    let gathering = cell(NetworkKind::Ethernet, 0, WritePolicy::Gathering, false, 1);
    let ratio = gathering.client_write_kb_per_sec / standard.client_write_kb_per_sec;
    assert!(ratio < 1.0, "gathering should not win with zero biods");
    assert!(ratio > 0.6, "penalty too large: ratio {ratio:.2}");
}

/// Table 1 vs Table 5 claim: striping helps the gathering server (bigger
/// clustered transfers have somewhere to go) much more than the baseline.
#[test]
fn striping_benefits_gathering_more_than_standard() {
    let std_1 = cell(NetworkKind::Fddi, 15, WritePolicy::Standard, false, 1);
    let std_3 = cell(NetworkKind::Fddi, 15, WritePolicy::Standard, false, 3);
    let gat_1 = cell(NetworkKind::Fddi, 15, WritePolicy::Gathering, false, 1);
    let gat_3 = cell(NetworkKind::Fddi, 15, WritePolicy::Gathering, false, 3);
    let std_gain = std_3.client_write_kb_per_sec / std_1.client_write_kb_per_sec;
    let gat_gain = gat_3.client_write_kb_per_sec / gat_1.client_write_kb_per_sec;
    assert!(
        gat_gain >= std_gain * 0.95,
        "striping gain with gathering ({gat_gain:.2}x) should at least match the baseline ({std_gain:.2}x)"
    );
    assert!(
        gat_3.client_write_kb_per_sec > std_3.client_write_kb_per_sec * 2.5,
        "on the stripe set gathering should win big"
    );
}

/// Table 2 claim: under Prestoserve the baseline is already fast (NVRAM hides
/// the latency), and gathering's value is CPU efficiency — CPU per byte moved
/// drops even if client throughput gives a little.
#[test]
fn presto_gathering_saves_cpu_per_byte() {
    let without = cell(NetworkKind::Ethernet, 7, WritePolicy::Standard, true, 1);
    let with = cell(NetworkKind::Ethernet, 7, WritePolicy::Gathering, true, 1);
    assert!(
        without.client_write_kb_per_sec
            > cell(NetworkKind::Ethernet, 7, WritePolicy::Standard, false, 1)
                .client_write_kb_per_sec
                * 2.0,
        "Prestoserve should transform the baseline"
    );
    let cpu_per_kb_without = without.server_cpu_percent / without.client_write_kb_per_sec;
    let cpu_per_kb_with = with.server_cpu_percent / with.client_write_kb_per_sec;
    assert!(
        cpu_per_kb_with < cpu_per_kb_without * 0.95,
        "gathering should reduce CPU per KB: {cpu_per_kb_with:.5} vs {cpu_per_kb_without:.5}"
    );
    assert!(with.client_write_kb_per_sec > without.client_write_kb_per_sec * 0.75);
}

/// The core 3N -> N claim, measured at the disk: transactions per kilobyte of
/// client data drop by a large factor with gathering.
#[test]
fn disk_transactions_per_kb_drop_sharply() {
    let standard = cell(NetworkKind::Fddi, 15, WritePolicy::Standard, false, 1);
    let gathering = cell(NetworkKind::Fddi, 15, WritePolicy::Gathering, false, 1);
    let std_ratio = standard.disk_trans_per_sec / standard.client_write_kb_per_sec;
    let gat_ratio = gathering.disk_trans_per_sec / gathering.client_write_kb_per_sec;
    assert!(
        gat_ratio < std_ratio / 2.0,
        "transactions per client KB: gathering {gat_ratio:.4} vs standard {std_ratio:.4}"
    );
}
